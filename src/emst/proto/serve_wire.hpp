// Serve protocol vocabulary with a compact POD wire codec (docs/SERVE.md).
//
// The request/response messages of the long-lived MST service
// (`emst_serve`): a client keeps a deployment session open, streams
// join/leave/move mutations, commits them in batches, and queries the
// maintained tree. Requests and responses are separate variants — each
// direction has its own tag space — and, unlike the GHS vocabulary, the
// field widths are FIXED rather than topology-derived: a client speaks
// before it knows the deployment size, and the deployment grows while the
// session is open. Node ids are 32 bits, counts 64, coordinates full f64
// (bit-cast to u64 — the service hands back exactly the doubles it was
// given, no quantization).
//
// Every message knows its encoded size (`encoded_bits`, tag included) and
// round-trips through BitWriter / BitReader exactly like the GHS codec
// (tests/serve_wire_test.cpp mirrors tests/proto_wire_test.cpp). The
// variant-level `encode` writes the 4-bit tag; `decode_serve_req` /
// `decode_serve_resp` mirror it.
//
// Transport framing (the socket layer, serve/server.hpp): every message
// travels in a frame of [u16 version | u32 payload-byte-length | payload]
// with both header fields big-endian; the version is checked per frame, so
// a speaker of a future revision fails fast instead of desynchronizing the
// stream mid-session.
#pragma once

#include <bit>
#include <cstdint>
#include <variant>

#include "emst/proto/wire.hpp"

namespace emst::proto {

/// Bumped on any wire-visible change; checked on every frame.
inline constexpr std::uint16_t kServeProtocolVersion = 1;

/// 8 request kinds / 7 response kinds fit a 4-bit tag with headroom.
inline constexpr std::uint32_t kServeTagBits = 4;
inline constexpr std::uint32_t kServeIdBits = 32;
inline constexpr std::uint32_t kServeCountBits = 64;
inline constexpr std::uint32_t kServeVersionBits = 16;
inline constexpr std::uint32_t kServeErrorBits = 8;

/// Values double as the wire tag and the `ServeReq` variant index — keep
/// the three orders in sync (static_asserted in serve_wire.cpp).
enum class ServeReqType : std::uint8_t {
  kHello,
  kAddNode,
  kRemoveNode,
  kMoveNode,
  kCommit,
  kQueryTree,
  kQueryStats,
  kShutdown,
  kTypeCount,
};

/// Same contract for `ServeResp`.
enum class ServeRespType : std::uint8_t {
  kHelloOk,
  kNodeAdded,
  kAck,
  kError,
  kCommitReport,
  kTreeSummary,
  kStats,
  kTypeCount,
};

[[nodiscard]] const char* serve_req_type_name(ServeReqType type);
[[nodiscard]] const char* serve_resp_type_name(ServeRespType type);

enum class ServeError : std::uint8_t {
  kBadRequest = 0,      ///< malformed or out-of-order request
  kUnknownNode = 1,     ///< id never assigned or already removed
  kVersionMismatch = 2, ///< frame version != kServeProtocolVersion
  kShuttingDown = 3,    ///< server is draining; no further requests
};

/// Full-precision coordinate on the wire: f64 bit-cast to u64, 64 bits.
inline void write_f64(BitWriter& w, double v) {
  w.write(std::bit_cast<std::uint64_t>(v), 64);
}
[[nodiscard]] inline double read_f64(BitReader& r) {
  return std::bit_cast<double>(r.read(64));
}

// ---------------------------------------------------------------- requests

/// Session opener; must be the first request on a connection.
struct ServeHello {
  std::uint16_t version = kServeProtocolVersion;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeVersionBits;
  }
  void encode(BitWriter& w) const { w.write(version, kServeVersionBits); }
  [[nodiscard]] static ServeHello decode(BitReader& r) {
    return {static_cast<std::uint16_t>(r.read(kServeVersionBits))};
  }
  [[nodiscard]] bool operator==(const ServeHello&) const = default;
};

/// Join: admit a node at (x, y). The id is assigned immediately (the
/// NodeAdded response); the node enters the tree at the next commit.
struct ServeAddNode {
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + 128;
  }
  void encode(BitWriter& w) const {
    write_f64(w, x);
    write_f64(w, y);
  }
  [[nodiscard]] static ServeAddNode decode(BitReader& r) {
    ServeAddNode m;
    m.x = read_f64(r);
    m.y = read_f64(r);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeAddNode&) const = default;
};

/// Leave: remove a node. Takes effect at the next commit.
struct ServeRemoveNode {
  std::uint32_t id = 0;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeIdBits;
  }
  void encode(BitWriter& w) const { w.write(id, kServeIdBits); }
  [[nodiscard]] static ServeRemoveNode decode(BitReader& r) {
    return {static_cast<std::uint32_t>(r.read(kServeIdBits))};
  }
  [[nodiscard]] bool operator==(const ServeRemoveNode&) const = default;
};

/// Move: re-place an existing node. Takes effect at the next commit.
struct ServeMoveNode {
  std::uint32_t id = 0;
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeIdBits + 128;
  }
  void encode(BitWriter& w) const {
    w.write(id, kServeIdBits);
    write_f64(w, x);
    write_f64(w, y);
  }
  [[nodiscard]] static ServeMoveNode decode(BitReader& r) {
    ServeMoveNode m;
    m.id = static_cast<std::uint32_t>(r.read(kServeIdBits));
    m.x = read_f64(r);
    m.y = read_f64(r);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeMoveNode&) const = default;
};

/// Flush the admitted mutation batch into the maintained tree.
struct ServeCommit {
  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits;
  }
  void encode(BitWriter&) const {}
  [[nodiscard]] static ServeCommit decode(BitReader&) { return {}; }
  [[nodiscard]] bool operator==(const ServeCommit&) const = default;
};

struct ServeQueryTree {
  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits;
  }
  void encode(BitWriter&) const {}
  [[nodiscard]] static ServeQueryTree decode(BitReader&) { return {}; }
  [[nodiscard]] bool operator==(const ServeQueryTree&) const = default;
};

struct ServeQueryStats {
  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits;
  }
  void encode(BitWriter&) const {}
  [[nodiscard]] static ServeQueryStats decode(BitReader&) { return {}; }
  [[nodiscard]] bool operator==(const ServeQueryStats&) const = default;
};

/// Ask the daemon to commit any pending batch and exit cleanly.
struct ServeShutdown {
  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits;
  }
  void encode(BitWriter&) const {}
  [[nodiscard]] static ServeShutdown decode(BitReader&) { return {}; }
  [[nodiscard]] bool operator==(const ServeShutdown&) const = default;
};

// --------------------------------------------------------------- responses

struct ServeHelloOk {
  std::uint16_t version = kServeProtocolVersion;
  std::uint64_t nodes = 0;  ///< resident deployment size at session open

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeVersionBits + kServeCountBits;
  }
  void encode(BitWriter& w) const {
    w.write(version, kServeVersionBits);
    w.write(nodes, kServeCountBits);
  }
  [[nodiscard]] static ServeHelloOk decode(BitReader& r) {
    ServeHelloOk m;
    m.version = static_cast<std::uint16_t>(r.read(kServeVersionBits));
    m.nodes = r.read(kServeCountBits);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeHelloOk&) const = default;
};

struct ServeNodeAdded {
  std::uint32_t id = 0;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeIdBits;
  }
  void encode(BitWriter& w) const { w.write(id, kServeIdBits); }
  [[nodiscard]] static ServeNodeAdded decode(BitReader& r) {
    return {static_cast<std::uint32_t>(r.read(kServeIdBits))};
  }
  [[nodiscard]] bool operator==(const ServeNodeAdded&) const = default;
};

struct ServeAck {
  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits;
  }
  void encode(BitWriter&) const {}
  [[nodiscard]] static ServeAck decode(BitReader&) { return {}; }
  [[nodiscard]] bool operator==(const ServeAck&) const = default;
};

struct ServeErrorResp {
  ServeError code = ServeError::kBadRequest;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeErrorBits;
  }
  void encode(BitWriter& w) const {
    w.write(static_cast<std::uint64_t>(code), kServeErrorBits);
  }
  [[nodiscard]] static ServeErrorResp decode(BitReader& r) {
    return {static_cast<ServeError>(r.read(kServeErrorBits))};
  }
  [[nodiscard]] bool operator==(const ServeErrorResp&) const = default;
};

/// What one commit did: how many mutations it admitted, how much of the
/// deployment the repair touched, and whether it fell back to a rebuild.
struct ServeCommitReport {
  std::uint32_t admitted = 0;       ///< mutations in the batch
  std::uint64_t nodes_touched = 0;  ///< repair's protocol footprint
  bool rebuilt = false;             ///< fell back to a full rebuild
  std::uint64_t tree_edges = 0;
  double tree_len = 0.0;            ///< Σ|e| of the maintained tree

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + kServeIdBits + kServeCountBits + 1 +
           kServeCountBits + 64;
  }
  void encode(BitWriter& w) const {
    w.write(admitted, kServeIdBits);
    w.write(nodes_touched, kServeCountBits);
    w.write(rebuilt ? 1 : 0, 1);
    w.write(tree_edges, kServeCountBits);
    write_f64(w, tree_len);
  }
  [[nodiscard]] static ServeCommitReport decode(BitReader& r) {
    ServeCommitReport m;
    m.admitted = static_cast<std::uint32_t>(r.read(kServeIdBits));
    m.nodes_touched = r.read(kServeCountBits);
    m.rebuilt = r.read(1) != 0;
    m.tree_edges = r.read(kServeCountBits);
    m.tree_len = read_f64(r);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeCommitReport&) const = default;
};

struct ServeTreeSummary {
  std::uint64_t nodes = 0;  ///< alive nodes (committed state)
  std::uint64_t edges = 0;
  double total_len = 0.0;   ///< Σ|e|
  double total_sq = 0.0;    ///< Σ|e|²

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + 2 * kServeCountBits + 128;
  }
  void encode(BitWriter& w) const {
    w.write(nodes, kServeCountBits);
    w.write(edges, kServeCountBits);
    write_f64(w, total_len);
    write_f64(w, total_sq);
  }
  [[nodiscard]] static ServeTreeSummary decode(BitReader& r) {
    ServeTreeSummary m;
    m.nodes = r.read(kServeCountBits);
    m.edges = r.read(kServeCountBits);
    m.total_len = read_f64(r);
    m.total_sq = read_f64(r);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeTreeSummary&) const = default;
};

/// Session-lifetime counters (cumulative since daemon start).
struct ServeStats {
  std::uint64_t commits = 0;
  std::uint64_t rebuilds = 0;        ///< commits that fell back to rebuild
  std::uint64_t admitted = 0;        ///< mutations admitted over all commits
  std::uint64_t nodes_touched = 0;   ///< cumulative repair footprint
  std::uint64_t nodes = 0;           ///< alive nodes now
  std::uint64_t tree_edges = 0;

  [[nodiscard]] std::uint32_t encoded_bits() const noexcept {
    return kServeTagBits + 6 * kServeCountBits;
  }
  void encode(BitWriter& w) const {
    w.write(commits, kServeCountBits);
    w.write(rebuilds, kServeCountBits);
    w.write(admitted, kServeCountBits);
    w.write(nodes_touched, kServeCountBits);
    w.write(nodes, kServeCountBits);
    w.write(tree_edges, kServeCountBits);
  }
  [[nodiscard]] static ServeStats decode(BitReader& r) {
    ServeStats m;
    m.commits = r.read(kServeCountBits);
    m.rebuilds = r.read(kServeCountBits);
    m.admitted = r.read(kServeCountBits);
    m.nodes_touched = r.read(kServeCountBits);
    m.nodes = r.read(kServeCountBits);
    m.tree_edges = r.read(kServeCountBits);
    return m;
  }
  [[nodiscard]] bool operator==(const ServeStats&) const = default;
};

/// Alternative order == ServeReqType order == wire tag (static_asserted).
using ServeReq =
    std::variant<ServeHello, ServeAddNode, ServeRemoveNode, ServeMoveNode,
                 ServeCommit, ServeQueryTree, ServeQueryStats, ServeShutdown>;

/// Alternative order == ServeRespType order == wire tag (static_asserted).
using ServeResp =
    std::variant<ServeHelloOk, ServeNodeAdded, ServeAck, ServeErrorResp,
                 ServeCommitReport, ServeTreeSummary, ServeStats>;

[[nodiscard]] inline ServeReqType type_of(const ServeReq& m) noexcept {
  return static_cast<ServeReqType>(m.index());
}
[[nodiscard]] inline ServeRespType type_of(const ServeResp& m) noexcept {
  return static_cast<ServeRespType>(m.index());
}

/// Whole-frame payload size (tag + fields) of a concrete message.
[[nodiscard]] inline std::uint32_t encoded_bits(const ServeReq& m) noexcept {
  return std::visit([](const auto& p) { return p.encoded_bits(); }, m);
}
[[nodiscard]] inline std::uint32_t encoded_bits(const ServeResp& m) noexcept {
  return std::visit([](const auto& p) { return p.encoded_bits(); }, m);
}

/// Serialize tag + payload; the decoders mirror exactly.
void encode(const ServeReq& m, BitWriter& w);
void encode(const ServeResp& m, BitWriter& w);
[[nodiscard]] ServeReq decode_serve_req(BitReader& r);
[[nodiscard]] ServeResp decode_serve_resp(BitReader& r);

}  // namespace emst::proto
