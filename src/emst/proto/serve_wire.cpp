#include "emst/proto/serve_wire.hpp"

#include "emst/support/assert.hpp"

namespace emst::proto {

// The wire tag is the variant index is the enum value — one order, three
// views. A reorder in any of them is a silent protocol break; pin it here.
static_assert(std::variant_size_v<ServeReq> ==
              static_cast<std::size_t>(ServeReqType::kTypeCount));
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(ServeReqType::kHello),
                                 ServeReq>,
                             ServeHello>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kAddNode),
                       ServeReq>,
                   ServeAddNode>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kRemoveNode),
                       ServeReq>,
                   ServeRemoveNode>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kMoveNode),
                       ServeReq>,
                   ServeMoveNode>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kCommit),
                       ServeReq>,
                   ServeCommit>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kQueryTree),
                       ServeReq>,
                   ServeQueryTree>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kQueryStats),
                       ServeReq>,
                   ServeQueryStats>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeReqType::kShutdown),
                       ServeReq>,
                   ServeShutdown>);

static_assert(std::variant_size_v<ServeResp> ==
              static_cast<std::size_t>(ServeRespType::kTypeCount));
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kHelloOk),
                       ServeResp>,
                   ServeHelloOk>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kNodeAdded),
                       ServeResp>,
                   ServeNodeAdded>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(ServeRespType::kAck),
                                 ServeResp>,
                             ServeAck>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kError),
                       ServeResp>,
                   ServeErrorResp>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kCommitReport),
                       ServeResp>,
                   ServeCommitReport>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kTreeSummary),
                       ServeResp>,
                   ServeTreeSummary>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(ServeRespType::kStats),
                       ServeResp>,
                   ServeStats>);

static_assert((std::size_t{1} << kServeTagBits) >=
              static_cast<std::size_t>(ServeReqType::kTypeCount));
static_assert((std::size_t{1} << kServeTagBits) >=
              static_cast<std::size_t>(ServeRespType::kTypeCount));

const char* serve_req_type_name(ServeReqType type) {
  switch (type) {
    case ServeReqType::kHello: return "hello";
    case ServeReqType::kAddNode: return "add-node";
    case ServeReqType::kRemoveNode: return "remove-node";
    case ServeReqType::kMoveNode: return "move-node";
    case ServeReqType::kCommit: return "commit";
    case ServeReqType::kQueryTree: return "query-tree";
    case ServeReqType::kQueryStats: return "query-stats";
    case ServeReqType::kShutdown: return "shutdown";
    case ServeReqType::kTypeCount: break;
  }
  return "?";
}

const char* serve_resp_type_name(ServeRespType type) {
  switch (type) {
    case ServeRespType::kHelloOk: return "hello-ok";
    case ServeRespType::kNodeAdded: return "node-added";
    case ServeRespType::kAck: return "ack";
    case ServeRespType::kError: return "error";
    case ServeRespType::kCommitReport: return "commit-report";
    case ServeRespType::kTreeSummary: return "tree-summary";
    case ServeRespType::kStats: return "stats";
    case ServeRespType::kTypeCount: break;
  }
  return "?";
}

void encode(const ServeReq& m, BitWriter& w) {
  w.write(m.index(), kServeTagBits);
  std::visit([&](const auto& p) { p.encode(w); }, m);
}

void encode(const ServeResp& m, BitWriter& w) {
  w.write(m.index(), kServeTagBits);
  std::visit([&](const auto& p) { p.encode(w); }, m);
}

ServeReq decode_serve_req(BitReader& r) {
  switch (static_cast<ServeReqType>(r.read(kServeTagBits))) {
    case ServeReqType::kHello: return ServeHello::decode(r);
    case ServeReqType::kAddNode: return ServeAddNode::decode(r);
    case ServeReqType::kRemoveNode: return ServeRemoveNode::decode(r);
    case ServeReqType::kMoveNode: return ServeMoveNode::decode(r);
    case ServeReqType::kCommit: return ServeCommit::decode(r);
    case ServeReqType::kQueryTree: return ServeQueryTree::decode(r);
    case ServeReqType::kQueryStats: return ServeQueryStats::decode(r);
    case ServeReqType::kShutdown: return ServeShutdown::decode(r);
    case ServeReqType::kTypeCount: break;
  }
  EMST_ASSERT_MSG(false, "corrupt serve request wire tag");
  return ServeCommit{};
}

ServeResp decode_serve_resp(BitReader& r) {
  switch (static_cast<ServeRespType>(r.read(kServeTagBits))) {
    case ServeRespType::kHelloOk: return ServeHelloOk::decode(r);
    case ServeRespType::kNodeAdded: return ServeNodeAdded::decode(r);
    case ServeRespType::kAck: return ServeAck::decode(r);
    case ServeRespType::kError: return ServeErrorResp::decode(r);
    case ServeRespType::kCommitReport: return ServeCommitReport::decode(r);
    case ServeRespType::kTreeSummary: return ServeTreeSummary::decode(r);
    case ServeRespType::kStats: return ServeStats::decode(r);
    case ServeRespType::kTypeCount: break;
  }
  EMST_ASSERT_MSG(false, "corrupt serve response wire tag");
  return ServeAck{};
}

}  // namespace emst::proto
