// Cross-process wire format for the distributed engine (docs/DISTRIBUTED.md).
//
// `sim::DistributedNetwork` ships every cross-rank message through a real
// socket, so the PR 5 codecs stop being an accounting fiction: the payload
// bytes on the wire ARE the bit-packed proto encoding, and the engine
// asserts that the measured bits-on-air equal the bytes actually sent
// (payload bytes == ceil(bits/8), per message). `DistMsgAdapter<Msg>` is
// the customization point that says how a message type crosses the process
// boundary:
//
//  - the primary template covers trivially-copyable payloads (engine tests,
//    raw pump traffic) with a byte-image codec — unmeasured by
//    `sim::WireFormat`, so no bits/bytes identity is claimed for them;
//  - specializations for the driver vocabularies (`GhsMsg`, `ConntMsg`)
//    delegate to the proto codecs under the engine's configured
//    `WireContext`, exactly the encoding `encoded_bits()` measures.
//
// This header also pins the rank-channel frame protocol shared by the
// parent engine and the rank-runner child processes: the 6-byte
// [u16 version | u32 length] header layout is serve's (serve/framing.hpp —
// the parent and children reassemble streams with `serve::FrameBuffer`),
// with a distinct version word so a dist frame can never be mistaken for a
// serve frame, plus the PARCOACH-style collective-fingerprint chain both
// sides maintain over every exchanged frame (docs/DISTRIBUTED.md §4).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "emst/proto/connt_wire.hpp"
#include "emst/proto/ghs_wire.hpp"
#include "emst/proto/wire.hpp"

namespace emst::proto {

// -- Rank-channel frame protocol --------------------------------------------

/// Version word carried in every rank-channel frame header (the serve
/// 6-byte layout). Distinct from kServeProtocolVersion by construction.
inline constexpr std::uint16_t kDistProtocolVersion = 0x4401;

/// Frame opcodes (first payload byte).
inline constexpr std::uint8_t kDistOpRound = 1;    ///< parent → rank
inline constexpr std::uint8_t kDistOpDrained = 2;  ///< rank → parent
inline constexpr std::uint8_t kDistOpDesync = 3;   ///< rank → parent: abort

/// Actor-mode opcodes (docs/DISTRIBUTED.md §6). In routing mode the ranks
/// are byte routers and every handler runs in the parent; in actor mode the
/// handlers themselves run inside the rank that owns the receiving node,
/// and the rank ships back an *effect ledger* the parent replays. The
/// opcodes are disjoint from the routing set so a placement mix-up is a
/// collective desync, not a silent misparse.
inline constexpr std::uint8_t kDistOpActorRound = 6;      ///< parent → rank
inline constexpr std::uint8_t kDistOpActorDrained = 7;    ///< rank → parent
inline constexpr std::uint8_t kDistOpActorStep = 8;       ///< parent → rank
inline constexpr std::uint8_t kDistOpActorStepped = 9;    ///< rank → parent
inline constexpr std::uint8_t kDistOpActorHarvest = 10;   ///< parent → rank
inline constexpr std::uint8_t kDistOpActorHarvested = 11; ///< rank → parent

/// Frame flags (second payload byte). A logical ROUND/DRAINED exchange may
/// span several physical frames (chunks) when a round's mailbox outgrows
/// the serve frame cap; the final chunk carries kDistFlagLast. Every chunk
/// is individually fingerprinted, so chunking never weakens the collective
/// check.
inline constexpr std::uint8_t kDistFlagLast = 1;

/// Fixed per-message record sizes (bytes, excluding the payload itself).
/// Round records: seq u64 | due u64 | from u32 | to u32 | distance u64
/// (bit image) | bits u32 | plen u32. Drained records: from u32 | to u32 |
/// distance u64 | bits u32 | lost u8 | plen u32.
inline constexpr std::size_t kDistRoundRecordBytes = 40;
inline constexpr std::size_t kDistDrainedRecordBytes = 25;
/// ROUND/DRAINED frame scaffolding: opcode u8 | flags u8 | round u64 |
/// count u32 up front, and the 8-byte fingerprint trailer at the end.
inline constexpr std::size_t kDistFrameFixedBytes = 14;
inline constexpr std::size_t kDistFingerprintBytes = 8;
/// Chunk budget: records are packed into a frame body until the NEXT record
/// would push the payload (body + fingerprint trailer) past the serve
/// frame cap. Must equal serve::kMaxFramePayloadBytes (static_asserted
/// where both headers are visible — proto cannot include serve).
inline constexpr std::size_t kDistMaxFramePayloadBytes = std::size_t{1} << 16;
inline constexpr std::size_t kDistMaxChunkBodyBytes =
    kDistMaxFramePayloadBytes - kDistFingerprintBytes;

// -- Actor effect ledger -----------------------------------------------------
//
// When handlers run rank-resident, a handler invocation cannot touch the
// parent's meter or staging queues directly. Instead the rank records every
// externally visible thing the handler did as a fixed-layout *effect
// record*, and the parent replays those records — in the exact order the
// serial engine would have produced them — against its own meter, fault
// clock and staging queues. Determinism therefore never depends on the
// rank's own clocks: the parent remains the single owner of energy
// accounting, loss/crash fates and telemetry.
//
// Effect records (inside a ledger entry):
//   unicast   tag u8=0 | kind u8 | dtag u8 | fragment u32 | to u32 |
//             reach u64 (double bit image) | bits u32 | plen u32 | payload
//   broadcast tag u8=1 | kind u8 | dtag u8 | fragment u32 |
//             radius u64 (double bit image) | bits u32 | plen u32 | payload
//   note      tag u8=2 | a u32 | b u64
//
// `dtag` is the driver's own message-type index (GhsMsgType for classic
// GHS; 0 for Co-NNT) so the parent can replay per-type tallies without
// decoding the payload. `note` is a driver-defined scalar observation
// (Co-NNT uses it to ship the chosen connection target + its distance).
inline constexpr std::uint8_t kDistEffectUnicast = 0;
inline constexpr std::uint8_t kDistEffectBroadcast = 1;
inline constexpr std::uint8_t kDistEffectNote = 2;
inline constexpr std::size_t kDistEffectUnicastFixedBytes = 27;
inline constexpr std::size_t kDistEffectBroadcastFixedBytes = 23;
inline constexpr std::size_t kDistEffectNoteBytes = 13;

// ACTOR_DRAINED ledger entries (one per handler invocation or crash drop,
// never straddling a chunk boundary):
//   retry     tag u8=0 | node u32 | redeferred u8 | neffects u16 | effects
//   delivery  tag u8=1 | from u32 | to u32 | distance u64 (double bit
//             image) | bits u32 | status u8 | neffects u16 | effects
// Retry entries come first, in the rank-local FIFO order (which the parent
// reproduces from its own deferred-queue model); delivery entries follow in
// ascending-receiver order, exactly the per-rank order the routing-mode
// DRAINED records use, so the parent's min-receiver merge is unchanged.
inline constexpr std::uint8_t kDistEntryRetry = 0;
inline constexpr std::uint8_t kDistEntryDelivery = 1;
inline constexpr std::size_t kDistEntryRetryFixedBytes = 8;
inline constexpr std::size_t kDistEntryDeliveryFixedBytes = 24;

/// Delivery entry statuses. The rank classifies crash drops with its
/// *mirrored* fault clock; the parent re-classifies with the authoritative
/// clock and asserts agreement — a mirror divergence aborts loudly instead
/// of corrupting the energy stream.
inline constexpr std::uint8_t kDistDeliveryDispatched = 0;
inline constexpr std::uint8_t kDistDeliveryCrashDropped = 1;
inline constexpr std::uint8_t kDistDeliveryDeferred = 2;

// ACTOR_STEP frames choreograph the driver phases that are not message
// deliveries (spontaneous wakeups, epoch restarts, Co-NNT's probe/connect
// sweeps). Body: op u8 | flags u8 | round u64 | step u8 | param u64 |
// fault_round u64 | count u32 | node u32 × count. The reply
// (ACTOR_STEPPED) carries one group per invoked node:
//   group  node u32 | flag u8 | neffects u16 | effects
// in ascending local-node order; the parent walks its independently
// computed global invocation order and pulls each group from the owning
// rank, asserting the node ids line up.
inline constexpr std::uint8_t kDistStepWakeupAll = 0;
inline constexpr std::uint8_t kDistStepWakeupList = 1;
inline constexpr std::uint8_t kDistStepRestart = 2;
inline constexpr std::uint8_t kDistStepConntProbe = 3;
inline constexpr std::uint8_t kDistStepConntConnect = 4;
inline constexpr std::uint8_t kDistStepConntReset = 5;
inline constexpr std::size_t kDistStepFixedBytes = 31;
inline constexpr std::size_t kDistStepGroupFixedBytes = 7;

// ACTOR_HARVEST asks a rank to ship its node states home at the end of a
// run: the ACTOR_HARVESTED reply carries `node u32 | nbytes u32 | state
// image` per local node in ascending order (state images are the actor's
// own proto::BitWriter codec), and the final chunk ends with the rank's
// u64 handler-invocation counter — the acceptance witness that handlers
// really ran rank-side (> 0 in the rank, 0 in the parent).
inline constexpr std::size_t kDistHarvestNodeFixedBytes = 8;

/// FNV-1a over a byte range — the frame-body hash both sides feed the
/// fingerprint chain.
[[nodiscard]] inline std::uint64_t dist_hash(const std::uint8_t* data,
                                             std::size_t len) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Chain seed and mix: fp' = (fp ^ frame_hash) * FNV prime. Every frame in
/// either direction advances the per-rank chain on both sides; equality at
/// every frame is the collective-matching invariant (a rank that missed,
/// repeated, or saw a corrupted exchange diverges immediately and
/// diagnosably instead of hanging).
inline constexpr std::uint64_t kDistFingerprintSeed = 0x9e3779b97f4a7c15ULL;
[[nodiscard]] inline std::uint64_t dist_mix(std::uint64_t fp,
                                            std::uint64_t frame_hash) noexcept {
  return (fp ^ frame_hash) * 0x100000001b3ULL;
}

// Big-endian scalar packing, matching the serve frame header convention.
inline void dist_put_u32(std::vector<std::uint8_t>& out,
                         std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
inline void dist_put_u64(std::vector<std::uint8_t>& out,
                         std::uint64_t v) {
  dist_put_u32(out, static_cast<std::uint32_t>(v >> 32));
  dist_put_u32(out, static_cast<std::uint32_t>(v));
}
inline void dist_put_u16(std::vector<std::uint8_t>& out,
                         std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
[[nodiscard]] inline std::uint16_t dist_get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    static_cast<std::uint16_t>(p[1]));
}
[[nodiscard]] inline std::uint32_t dist_get_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
[[nodiscard]] inline std::uint64_t dist_get_u64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(dist_get_u32(p)) << 32) |
         dist_get_u32(p + 4);
}

// -- Message payload codec ---------------------------------------------------

/// How a message type crosses the rank boundary. The engine encodes at
/// route time (parent side — the sender), the payload bytes ride the
/// frames out to the owning rank's calendar ring and back, and the engine
/// decodes at the merge (parent side — delivery). The original in-memory
/// object is dropped at encode time, so a codec bug is a failed
/// differential test, not a silent fallback.
///
/// The primary template is the byte-image codec for trivially-copyable
/// payloads; `sim::WireFormat` reports them unmeasured, so their wire cost
/// is transport bookkeeping only. Driver vocabularies specialize below.
template <typename Msg>
struct DistMsgAdapter {
  static_assert(std::is_trivially_copyable_v<Msg>,
                "DistMsgAdapter needs a trivially-copyable payload or an "
                "explicit specialization (see GhsMsg/ConntMsg below)");

  static void encode(const Msg& m, BitWriter& w, const sim::WireFormat<Msg>&) {
    std::uint8_t raw[sizeof(Msg)];
    std::memcpy(raw, &m, sizeof(Msg));
    for (const std::uint8_t b : raw) w.write(b, 8);
  }
  [[nodiscard]] static Msg decode(BitReader& r, const sim::WireFormat<Msg>&) {
    std::uint8_t raw[sizeof(Msg)];
    for (std::uint8_t& b : raw) b = static_cast<std::uint8_t>(r.read(8));
    Msg m;
    std::memcpy(&m, raw, sizeof(Msg));
    return m;
  }
};

/// Classic GHS vocabulary: the bit-packed tag+payload codec of ghs_wire.hpp
/// under the engine's WireContext — the exact encoding `encoded_bits()`
/// (and therefore every charged `Accounting::bits`) measures.
template <>
struct DistMsgAdapter<GhsMsg> {
  static void encode(const GhsMsg& m, BitWriter& w,
                     const sim::WireFormat<GhsMsg>& wf) {
    proto::encode(m, w, wf.ctx);
  }
  [[nodiscard]] static GhsMsg decode(BitReader& r,
                                     const sim::WireFormat<GhsMsg>& wf) {
    return decode_ghs(r, wf.ctx);
  }
};

/// Co-NNT vocabulary (connt_wire.hpp), same contract.
template <>
struct DistMsgAdapter<ConntMsg> {
  static void encode(const ConntMsg& m, BitWriter& w,
                     const sim::WireFormat<ConntMsg>& wf) {
    proto::encode(m, w, wf.ctx);
  }
  [[nodiscard]] static ConntMsg decode(BitReader& r,
                                       const sim::WireFormat<ConntMsg>& wf) {
    return decode_connt(r, wf.ctx);
  }
};

}  // namespace emst::proto
