#include "emst/proto/ghs_wire.hpp"

#include <algorithm>

namespace emst::proto {

// The wire tag is the variant index is the enum value — one order, three
// views. A reorder in any of them is a silent protocol break; pin it here.
static_assert(std::variant_size_v<GhsMsg> ==
              static_cast<std::size_t>(GhsMsgType::kTypeCount));
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(GhsMsgType::kConnect),
                                 GhsMsg>,
                             GhsConnect>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(GhsMsgType::kInitiate), GhsMsg>,
                   GhsInitiate>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(GhsMsgType::kTest),
                                 GhsMsg>,
                             GhsTest>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(GhsMsgType::kAccept),
                                 GhsMsg>,
                             GhsAccept>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(GhsMsgType::kReject),
                                 GhsMsg>,
                             GhsReject>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(GhsMsgType::kReport),
                                 GhsMsg>,
                             GhsReport>);
static_assert(
    std::is_same_v<
        std::variant_alternative_t<
            static_cast<std::size_t>(GhsMsgType::kChangeRoot), GhsMsg>,
        GhsChangeRoot>);
static_assert(
    std::is_same_v<std::variant_alternative_t<
                       static_cast<std::size_t>(GhsMsgType::kAnnounce), GhsMsg>,
                   GhsAnnounce>);
static_assert((std::size_t{1} << kGhsTagBits) >=
              static_cast<std::size_t>(GhsMsgType::kTypeCount));

const char* ghs_msg_type_name(GhsMsgType type) {
  switch (type) {
    case GhsMsgType::kConnect: return "connect";
    case GhsMsgType::kInitiate: return "initiate";
    case GhsMsgType::kTest: return "test";
    case GhsMsgType::kAccept: return "accept";
    case GhsMsgType::kReject: return "reject";
    case GhsMsgType::kReport: return "report";
    case GhsMsgType::kChangeRoot: return "change-root";
    case GhsMsgType::kAnnounce: return "announce";
    case GhsMsgType::kTypeCount: break;
  }
  return "?";
}

void encode(const GhsMsg& m, BitWriter& w, const WireContext& ctx) {
  w.write(m.index(), kGhsTagBits);
  std::visit([&](const auto& p) { p.encode(w, ctx); }, m);
}

GhsMsg decode_ghs(BitReader& r, const WireContext& ctx) {
  switch (static_cast<GhsMsgType>(r.read(kGhsTagBits))) {
    case GhsMsgType::kConnect: return GhsConnect::decode(r, ctx);
    case GhsMsgType::kInitiate: return GhsInitiate::decode(r, ctx);
    case GhsMsgType::kTest: return GhsTest::decode(r, ctx);
    case GhsMsgType::kAccept: return GhsAccept::decode(r, ctx);
    case GhsMsgType::kReject: return GhsReject::decode(r, ctx);
    case GhsMsgType::kReport: return GhsReport::decode(r, ctx);
    case GhsMsgType::kChangeRoot: return GhsChangeRoot::decode(r, ctx);
    case GhsMsgType::kAnnounce: return GhsAnnounce::decode(r, ctx);
    case GhsMsgType::kTypeCount: break;
  }
  EMST_ASSERT_MSG(false, "corrupt GHS wire tag");
  return GhsAccept{};
}

std::uint32_t max_encoded_bits(GhsMsgType type,
                               const WireContext& ctx) noexcept {
  switch (type) {
    case GhsMsgType::kConnect: return GhsConnect{}.encoded_bits(ctx);
    case GhsMsgType::kInitiate: return GhsInitiate{}.encoded_bits(ctx);
    case GhsMsgType::kTest: return GhsTest{}.encoded_bits(ctx);
    case GhsMsgType::kAccept: return GhsAccept{}.encoded_bits(ctx);
    case GhsMsgType::kReject: return GhsReject{}.encoded_bits(ctx);
    case GhsMsgType::kReport:
      // Presence flag + index: the worst case is "MOE found".
      return GhsReport{0}.encoded_bits(ctx);
    case GhsMsgType::kChangeRoot: return GhsChangeRoot{}.encoded_bits(ctx);
    case GhsMsgType::kAnnounce: return GhsAnnounce{}.encoded_bits(ctx);
    case GhsMsgType::kTypeCount: break;
  }
  return 0;
}

}  // namespace emst::proto
