// Shared fragment runtime for the GHS-family drivers.
//
// Extracted from the phase-synchronous GHS engine: the per-node fragment
// identity (leader array), the fragment forest (tree edges + adjacency),
// BFS fragment views, the Borůvka merge with the paper's passive-id
// retention (§V-A), and the deterministic crash-repair re-election
// (docs/ROBUSTNESS.md). Drivers own the *protocol* — what gets charged,
// announced and retried — while this class owns the *bookkeeping* every GHS
// variant repeats.
//
// Index-free by design: fragment state is keyed by node ids and edge
// endpoints, never by positions in a global edge list, so the same runtime
// serves the materialized topology backend and the implicit one (which has
// no edge list at all). Merge candidates order by (weight, canonical
// endpoints) — the repository's single edge tie-break rule — which is
// exactly the order global edge indices used to encode. Per-node state
// stays sparse, per the paper's modified-GHS device: a node caches only the
// fragment-id/distance pairs it actually probed, not its whole
// neighbourhood.
//
// The fragment-size census (paper §V: "one broadcast and one convergecast")
// also lives here, built on `sim::collectives` and carrying census wire
// sizes (`census_query_bits` / `census_count_bits`) as ambient meter bits;
// `ghs::fragment_census` is a thin delegating wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/proto/ghs_wire.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/collectives.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/support/assert.hpp"

namespace emst::proto {

using NodeId = graph::NodeId;

/// BFS parents/order of one fragment from its leader over tree edges.
struct FragmentView {
  std::vector<NodeId> order;  ///< BFS order, order[0] = leader
  std::unordered_map<NodeId, NodeId> parent;
  std::unordered_map<NodeId, std::size_t> depth;
  std::size_t max_depth = 0;
};

class FragmentSet {
 public:
  /// Start from singletons: every node leads its own fragment.
  explicit FragmentSet(std::size_t nodes);

  /// Replace the leader array wholesale (seeding from a prior run's
  /// forest); tree edges are added separately via `add_tree_edge`.
  void assign_leaders(const std::vector<NodeId>& leader);

  [[nodiscard]] NodeId leader(NodeId u) const noexcept { return frag_[u]; }
  void set_leader(NodeId u, NodeId l) noexcept { frag_[u] = l; }
  [[nodiscard]] const std::vector<NodeId>& leaders() const noexcept {
    return frag_;
  }

  /// Record a new fragment-tree edge (kept in canonical u < v form).
  void add_tree_edge(const graph::Edge& e);

  /// Drop the (u,v) tree edge — the serve-layer cycle eviction: when an
  /// inserted edge closes a cycle whose maximum edge it beats, that maximum
  /// leaves the forest. Leaders are NOT touched (the component stays one
  /// component after the caller adds the replacing edge); the edge must be
  /// present (asserted).
  void remove_tree_edge(NodeId u, NodeId v);

  [[nodiscard]] const std::vector<graph::Edge>& tree() const noexcept {
    return tree_;
  }
  /// Whether (u,v) is a recorded tree edge — a scan of u's tree adjacency,
  /// whose degree is bounded by the fragment tree's branching.
  [[nodiscard]] bool edge_in_tree(NodeId u, NodeId v) const {
    for (const NodeId x : tree_adj_[u])
      if (x == v) return true;
    return false;
  }
  [[nodiscard]] const std::vector<std::vector<NodeId>>& tree_adjacency()
      const noexcept {
    return tree_adj_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return frag_.size(); }

  /// BFS view of the fragment led by `leader` (order, parents, depths).
  [[nodiscard]] FragmentView view(NodeId leader) const;

  /// Number of distinct fragment leaders.
  [[nodiscard]] std::size_t fragment_count() const;

  /// One fragment's committed minimum outgoing edge for a merge round.
  /// Default-constructed = "no outgoing edge" (infinite weight, no
  /// endpoints); ranks after every real candidate under candidate_less.
  struct MergeCandidate {
    double w = std::numeric_limits<double>::infinity();
    NodeId from = graph::kNoNode;
    NodeId to = graph::kNoNode;

    [[nodiscard]] bool valid() const noexcept { return from != graph::kNoNode; }
  };

  /// Total order on candidates mirroring graph::edge_less — (weight,
  /// canonical endpoints) — the same order global edge indices encode, so
  /// index-free MOE selection picks identical edges.
  [[nodiscard]] static bool candidate_less(const MergeCandidate& a,
                                           const MergeCandidate& b) noexcept {
    if (a.w != b.w) return a.w < b.w;
    const NodeId au = a.from < a.to ? a.from : a.to;
    const NodeId av = a.from < a.to ? a.to : a.from;
    const NodeId bu = b.from < b.to ? b.from : b.to;
    const NodeId bv = b.from < b.to ? b.to : b.from;
    if (au != bu) return au < bu;
    return av < bv;
  }

  /// Borůvka contraction of the selected MOEs with the paper's passive-id
  /// retention: fragments linked by chosen edges merge; a group containing
  /// a passive fragment keeps the passive leader (asserted unique) when
  /// `retain_passive_id`, otherwise the new leader is the higher-id
  /// endpoint of the group's core (minimum selected) edge. `passive` is
  /// updated in place. `selected` is one (leader, candidate) entry per
  /// committing fragment, sorted ascending by leader. Returns the nodes
  /// whose leader changed (the modified-GHS re-announce set), in node-id
  /// order.
  [[nodiscard]] std::vector<NodeId> merge(
      std::span<const std::pair<NodeId, MergeCandidate>> selected,
      std::unordered_set<NodeId>& passive, bool retain_passive_id);

  /// Crash repair (docs/ROBUSTNESS.md): drop tree edges incident to down
  /// nodes, split their fragments into consistent pieces with
  /// deterministically re-elected leaders (the surviving old leader where
  /// possible, else the minimum live member id); down nodes become dormant
  /// singletons. Returns the LIVE nodes whose leader changed — the
  /// re-announce set.
  [[nodiscard]] std::vector<NodeId> repair(const std::vector<bool>& down);

 private:
  std::vector<NodeId> frag_;                   ///< fragment leader per node
  std::vector<std::vector<NodeId>> tree_adj_;  ///< fragment tree adjacency
  std::vector<graph::Edge> tree_;
  mutable std::vector<char> seen_;  ///< scratch bitmap (leader scans)
};

/// Wire sizes of the census collective: the size query flooding down is a
/// bare protocol tag; the convergecast reply carries a subtree size.
[[nodiscard]] inline std::uint32_t census_query_bits(
    const WireContext&) noexcept {
  return kGhsTagBits;
}
[[nodiscard]] inline std::uint32_t census_count_bits(
    const WireContext& ctx) noexcept {
  return kGhsTagBits + ctx.count_bits;
}

/// Fragment-size census (paper §V): the leader floods a size query down its
/// tree, member counts fold back up — one unicast per tree edge each way,
/// charged to `meter` under kind kCensus with census wire bits. With
/// `link`, each tree message runs through the ARQ session simulator
/// (give-ups leave that subtree uncounted — the census degrades, it never
/// wedges). Returns per-node size of its own fragment. Templated over the
/// topology backend (only distance() and node_count() are used).
template <typename Topo>
[[nodiscard]] std::vector<std::size_t> fragment_census(
    const Topo& topo, const std::vector<NodeId>& leader,
    const std::vector<graph::Edge>& tree, sim::EnergyMeter& meter,
    const WireContext& ctx, sim::ArqLink* link = nullptr) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(leader.size() == n);
  // "One broadcast and one convergecast" (§V): the leader floods a size
  // query down its tree, then member counts fold back up — one unicast per
  // tree edge in each direction.
  //
  // Distinct leaders in first-occurrence order: deterministic and O(n),
  // and forest_parents is insensitive to root order (parents within a tree
  // are unique regardless of traversal interleaving).
  std::vector<NodeId> leaders;
  {
    std::vector<char> seen(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId l = leader[u];
      if (seen[l] == 0) {
        seen[l] = 1;
        leaders.push_back(l);
      }
    }
  }
  const auto parent = sim::forest_parents(n, tree, leaders);
  const auto schedule = sim::make_schedule(parent);
  const sim::MsgKind saved_kind = meter.kind();
  meter.set_kind(sim::MsgKind::kCensus);
  meter.clear_fragment();
  // Size query down: a bare tag on the wire, but the message must be paid.
  meter.set_bits(census_query_bits(ctx));
  (void)sim::tree_broadcast<std::uint8_t>(
      topo, parent, schedule, std::vector<std::uint8_t>(n, 0),
      [](std::uint8_t v, NodeId) { return v; }, meter, link);
  // Member counts up.
  meter.set_bits(census_count_bits(ctx));
  const auto subtree = sim::tree_convergecast<std::size_t>(
      topo, parent, schedule, std::vector<std::size_t>(n, 1),
      [](std::size_t a, std::size_t b) { return a + b; }, meter, link);
  meter.clear_bits();
  meter.set_kind(saved_kind);
  std::vector<std::size_t> out(n);
  for (NodeId u = 0; u < n; ++u) out[u] = subtree[leader[u]];
  return out;
}

}  // namespace emst::proto
