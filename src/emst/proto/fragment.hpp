// Shared fragment runtime for the GHS-family drivers.
//
// Extracted from the phase-synchronous GHS engine: the per-node fragment
// identity (leader array), the fragment forest (tree edges + adjacency +
// per-edge membership bits), BFS fragment views, the Borůvka merge with the
// paper's passive-id retention (§V-A), and the deterministic crash-repair
// re-election (docs/ROBUSTNESS.md). Drivers own the *protocol* — what gets
// charged, announced and retried — while this class owns the *bookkeeping*
// every GHS variant repeats.
//
// The fragment-size census (paper §V: "one broadcast and one convergecast")
// also lives here, built on `sim::collectives` and carrying census wire
// sizes (`census_query_bits` / `census_count_bits`) as ambient meter bits;
// `ghs::fragment_census` is a thin delegating wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/proto/ghs_wire.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/collectives.hpp"
#include "emst/sim/reliable.hpp"

namespace emst::proto {

using NodeId = graph::NodeId;

/// BFS parents/order of one fragment from its leader over tree edges.
struct FragmentView {
  std::vector<NodeId> order;  ///< BFS order, order[0] = leader
  std::unordered_map<NodeId, NodeId> parent;
  std::unordered_map<NodeId, std::size_t> depth;
  std::size_t max_depth = 0;
};

class FragmentSet {
 public:
  /// Start from singletons: every node leads its own fragment.
  FragmentSet(std::size_t nodes, std::size_t edges);

  /// Replace the leader array wholesale (seeding from a prior run's
  /// forest); tree edges are added separately via `add_tree_edge`.
  void assign_leaders(const std::vector<NodeId>& leader);

  [[nodiscard]] NodeId leader(NodeId u) const noexcept { return frag_[u]; }
  void set_leader(NodeId u, NodeId l) noexcept { frag_[u] = l; }
  [[nodiscard]] const std::vector<NodeId>& leaders() const noexcept {
    return frag_;
  }

  /// Record a new fragment-tree edge; `edge_index` is its position in the
  /// topology's canonical edge list (marks the edge internal forever).
  void add_tree_edge(const graph::Edge& e, std::uint64_t edge_index);

  [[nodiscard]] const std::vector<graph::Edge>& tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] bool edge_in_tree(std::uint64_t edge_index) const {
    return in_tree_[edge_index];
  }
  [[nodiscard]] const std::vector<std::vector<NodeId>>& tree_adjacency()
      const noexcept {
    return tree_adj_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return frag_.size(); }

  /// BFS view of the fragment led by `leader` (order, parents, depths).
  [[nodiscard]] FragmentView view(NodeId leader) const;

  /// Number of distinct fragment leaders.
  [[nodiscard]] std::size_t fragment_count() const;

  /// One fragment's committed minimum outgoing edge for a merge round.
  struct MergeCandidate {
    std::uint64_t edge_index = kInfEdge;
    NodeId from = graph::kNoNode;
    NodeId to = graph::kNoNode;
  };

  /// Borůvka contraction of the selected MOEs with the paper's passive-id
  /// retention: fragments linked by chosen edges merge; a group containing
  /// a passive fragment keeps the passive leader (asserted unique) when
  /// `retain_passive_id`, otherwise the new leader is the higher-id
  /// endpoint of the group's core (minimum selected) edge. `passive` is
  /// updated in place; `edges` is the topology's canonical edge list.
  /// Returns the nodes whose leader changed (the modified-GHS re-announce
  /// set), in node-id order.
  [[nodiscard]] std::vector<NodeId> merge(
      const std::unordered_map<NodeId, MergeCandidate>& selected,
      std::unordered_set<NodeId>& passive, bool retain_passive_id,
      std::span<const graph::Edge> edges);

  /// Crash repair (docs/ROBUSTNESS.md): drop tree edges incident to down
  /// nodes, split their fragments into consistent pieces with
  /// deterministically re-elected leaders (the surviving old leader where
  /// possible, else the minimum live member id); down nodes become dormant
  /// singletons. `edge_index_of` maps a tree edge's endpoints to its
  /// canonical index (needed to clear the internal-edge bit). Returns the
  /// LIVE nodes whose leader changed — the re-announce set.
  [[nodiscard]] std::vector<NodeId> repair(
      const std::vector<bool>& down,
      const std::function<std::uint64_t(NodeId, NodeId)>& edge_index_of);

 private:
  std::vector<NodeId> frag_;                   ///< fragment leader per node
  std::vector<std::vector<NodeId>> tree_adj_;  ///< fragment tree adjacency
  std::vector<graph::Edge> tree_;
  std::vector<bool> in_tree_;  ///< per global edge index
};

/// Wire sizes of the census collective: the size query flooding down is a
/// bare protocol tag; the convergecast reply carries a subtree size.
[[nodiscard]] inline std::uint32_t census_query_bits(
    const WireContext&) noexcept {
  return kGhsTagBits;
}
[[nodiscard]] inline std::uint32_t census_count_bits(
    const WireContext& ctx) noexcept {
  return kGhsTagBits + ctx.count_bits;
}

/// Fragment-size census (paper §V): the leader floods a size query down its
/// tree, member counts fold back up — one unicast per tree edge each way,
/// charged to `meter` under kind kCensus with census wire bits. With
/// `link`, each tree message runs through the ARQ session simulator
/// (give-ups leave that subtree uncounted — the census degrades, it never
/// wedges). Returns per-node size of its own fragment.
[[nodiscard]] std::vector<std::size_t> fragment_census(
    const sim::Topology& topo, const std::vector<NodeId>& leader,
    const std::vector<graph::Edge>& tree, sim::EnergyMeter& meter,
    const WireContext& ctx, sim::ArqLink* link = nullptr);

}  // namespace emst::proto
