#include "emst/proto/fragment.hpp"

#include <algorithm>
#include <queue>

#include "emst/graph/union_find.hpp"
#include "emst/support/assert.hpp"

namespace emst::proto {

namespace {
constexpr NodeId kNone = graph::kNoNode;
}  // namespace

FragmentSet::FragmentSet(std::size_t nodes, std::size_t edges) {
  frag_.resize(nodes);
  for (NodeId u = 0; u < nodes; ++u) frag_[u] = u;
  tree_adj_.assign(nodes, {});
  in_tree_.assign(edges, false);
}

void FragmentSet::assign_leaders(const std::vector<NodeId>& leader) {
  EMST_ASSERT(leader.size() == frag_.size());
  frag_ = leader;
}

void FragmentSet::add_tree_edge(const graph::Edge& e,
                                std::uint64_t edge_index) {
  tree_adj_[e.u].push_back(e.v);
  tree_adj_[e.v].push_back(e.u);
  tree_.push_back(e.canonical());
  in_tree_[edge_index] = true;
}

FragmentView FragmentSet::view(NodeId leader) const {
  FragmentView view;
  view.order.push_back(leader);
  view.parent[leader] = kNone;
  view.depth[leader] = 0;
  std::queue<NodeId> frontier;
  frontier.push(leader);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : tree_adj_[u]) {
      if (view.parent.count(v) > 0) continue;
      view.parent[v] = u;
      view.depth[v] = view.depth[u] + 1;
      view.max_depth = std::max(view.max_depth, view.depth[v]);
      view.order.push_back(v);
      frontier.push(v);
    }
  }
  return view;
}

std::size_t FragmentSet::fragment_count() const {
  const std::unordered_set<NodeId> leaders(frag_.begin(), frag_.end());
  return leaders.size();
}

std::vector<NodeId> FragmentSet::merge(
    const std::unordered_map<NodeId, MergeCandidate>& selected,
    std::unordered_set<NodeId>& passive, bool retain_passive_id,
    std::span<const graph::Edge> edges) {
  const std::size_t n = frag_.size();
  // Union fragments over chosen edges (union-find over node ids; first
  // unite members with their leader so leader sets represent groups).
  graph::UnionFind dsu(n);
  for (NodeId u = 0; u < n; ++u) dsu.unite(u, frag_[u]);
  for (const auto& [leader, c] : selected) dsu.unite(c.from, c.to);

  // Collect groups: representative -> fragment leaders inside.
  std::unordered_map<NodeId, std::vector<NodeId>> group_leaders;
  {
    std::unordered_set<NodeId> leaders(frag_.begin(), frag_.end());
    for (NodeId l : leaders) group_leaders[dsu.find(l)].push_back(l);
  }

  // Decide each group's new leader.
  std::unordered_map<NodeId, NodeId> new_leader_of_rep;
  for (auto& [rep, leaders] : group_leaders) {
    if (leaders.size() == 1) {
      new_leader_of_rep[rep] = leaders[0];
      continue;
    }
    NodeId chosen = kNone;
    for (NodeId l : leaders) {
      if (passive.count(l) > 0) {
        EMST_ASSERT_MSG(chosen == kNone,
                        "at most one passive fragment per group");
        chosen = l;
      }
    }
    const bool has_passive = chosen != kNone;
    if (!has_passive || !retain_passive_id) {
      // Core edge = minimum selected edge inside the group (it is the
      // mutual MOE); the new leader is its higher-id endpoint.
      MergeCandidate core;
      for (NodeId l : leaders) {
        const auto it = selected.find(l);
        if (it != selected.end() && it->second.edge_index < core.edge_index)
          core = it->second;
      }
      EMST_ASSERT(core.edge_index != kInfEdge);
      chosen = std::max(core.from, core.to);
    }
    new_leader_of_rep[rep] = chosen;
    if (has_passive) {
      // Passivity survives the merge (the giant keeps only accepting).
      for (NodeId l : leaders) passive.erase(l);
      passive.insert(chosen);
    }
  }

  // Add the chosen MOE edges to the forest (dedupe mutual picks).
  std::unordered_set<std::uint64_t> added;
  for (const auto& [leader, c] : selected) {
    if (!added.insert(c.edge_index).second) continue;
    add_tree_edge(edges[c.edge_index], c.edge_index);
  }

  // Relabel nodes; the caller announces the changed ones.
  std::vector<NodeId> changed;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId nl = new_leader_of_rep.at(dsu.find(frag_[u]));
    if (nl != frag_[u]) {
      frag_[u] = nl;
      changed.push_back(u);
    }
  }
  return changed;
}

std::vector<NodeId> FragmentSet::repair(
    const std::vector<bool>& down,
    const std::function<std::uint64_t(NodeId, NodeId)>& edge_index_of) {
  const std::size_t n = frag_.size();
  // Remove tree edges touching a down node; rebuild the forest.
  std::vector<graph::Edge> kept;
  kept.reserve(tree_.size());
  for (const graph::Edge& e : tree_) {
    if (down[e.u] || down[e.v]) {
      in_tree_[edge_index_of(e.u, e.v)] = false;
    } else {
      kept.push_back(e);
    }
  }
  tree_ = std::move(kept);
  for (auto& adj : tree_adj_) adj.clear();
  for (const graph::Edge& e : tree_) {
    tree_adj_[e.u].push_back(e.v);
    tree_adj_[e.v].push_back(e.u);
  }
  graph::UnionFind dsu(n);
  for (const graph::Edge& e : tree_) dsu.unite(e.u, e.v);
  // Surviving components are subsets of single old fragments, so every
  // live member of a component agrees on the old leader.
  std::unordered_map<NodeId, NodeId> comp_leader;
  for (NodeId u = 0; u < n; ++u) {
    if (down[u]) continue;
    auto [it, inserted] = comp_leader.try_emplace(dsu.find(u), u);
    if (!inserted && u < it->second) it->second = u;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (down[u]) continue;
    const NodeId old = frag_[u];
    if (!down[old] && dsu.find(old) == dsu.find(u))
      comp_leader[dsu.find(u)] = old;
  }
  std::vector<NodeId> changed;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId nl = down[u] ? u : comp_leader.at(dsu.find(u));
    if (nl == frag_[u]) continue;
    frag_[u] = nl;
    if (!down[u]) changed.push_back(u);
  }
  return changed;
}

std::vector<std::size_t> fragment_census(const sim::Topology& topo,
                                         const std::vector<NodeId>& leader,
                                         const std::vector<graph::Edge>& tree,
                                         sim::EnergyMeter& meter,
                                         const WireContext& ctx,
                                         sim::ArqLink* link) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(leader.size() == n);
  // "One broadcast and one convergecast" (§V): the leader floods a size
  // query down its tree, then member counts fold back up — one unicast per
  // tree edge in each direction.
  std::vector<NodeId> leaders;
  {
    std::unordered_set<NodeId> unique(leader.begin(), leader.end());
    leaders.assign(unique.begin(), unique.end());
  }
  const auto parent = sim::forest_parents(n, tree, leaders);
  const auto schedule = sim::make_schedule(parent);
  const sim::MsgKind saved_kind = meter.kind();
  meter.set_kind(sim::MsgKind::kCensus);
  meter.clear_fragment();
  // Size query down: a bare tag on the wire, but the message must be paid.
  meter.set_bits(census_query_bits(ctx));
  (void)sim::tree_broadcast<std::uint8_t>(
      topo, parent, schedule, std::vector<std::uint8_t>(n, 0),
      [](std::uint8_t v, NodeId) { return v; }, meter, link);
  // Member counts up.
  meter.set_bits(census_count_bits(ctx));
  const auto subtree = sim::tree_convergecast<std::size_t>(
      topo, parent, schedule, std::vector<std::size_t>(n, 1),
      [](std::size_t a, std::size_t b) { return a + b; }, meter, link);
  meter.clear_bits();
  meter.set_kind(saved_kind);
  std::vector<std::size_t> out(n);
  for (NodeId u = 0; u < n; ++u) out[u] = subtree[leader[u]];
  return out;
}

}  // namespace emst::proto
