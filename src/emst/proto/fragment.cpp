#include "emst/proto/fragment.hpp"

#include <algorithm>
#include <queue>

#include "emst/graph/union_find.hpp"
#include "emst/support/assert.hpp"

namespace emst::proto {

namespace {
constexpr NodeId kNone = graph::kNoNode;

[[nodiscard]] constexpr std::uint64_t pack_pair(NodeId u, NodeId v) noexcept {
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
}  // namespace

FragmentSet::FragmentSet(std::size_t nodes) {
  frag_.resize(nodes);
  for (NodeId u = 0; u < nodes; ++u) frag_[u] = u;
  tree_adj_.assign(nodes, {});
}

void FragmentSet::assign_leaders(const std::vector<NodeId>& leader) {
  EMST_ASSERT(leader.size() == frag_.size());
  frag_ = leader;
}

void FragmentSet::add_tree_edge(const graph::Edge& e) {
  tree_adj_[e.u].push_back(e.v);
  tree_adj_[e.v].push_back(e.u);
  tree_.push_back(e.canonical());
}

void FragmentSet::remove_tree_edge(NodeId u, NodeId v) {
  auto drop_adj = [this](NodeId a, NodeId b) {
    auto& adj = tree_adj_[a];
    const auto it = std::find(adj.begin(), adj.end(), b);
    EMST_ASSERT_MSG(it != adj.end(), "remove_tree_edge: edge not in forest");
    adj.erase(it);
  };
  drop_adj(u, v);
  drop_adj(v, u);
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  const auto it = std::find_if(
      tree_.begin(), tree_.end(),
      [&](const graph::Edge& e) { return e.u == lo && e.v == hi; });
  EMST_ASSERT_MSG(it != tree_.end(), "remove_tree_edge: edge not in tree list");
  tree_.erase(it);
}

FragmentView FragmentSet::view(NodeId leader) const {
  FragmentView view;
  view.order.push_back(leader);
  view.parent[leader] = kNone;
  view.depth[leader] = 0;
  std::queue<NodeId> frontier;
  frontier.push(leader);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : tree_adj_[u]) {
      if (view.parent.count(v) > 0) continue;
      view.parent[v] = u;
      view.depth[v] = view.depth[u] + 1;
      view.max_depth = std::max(view.max_depth, view.depth[v]);
      view.order.push_back(v);
      frontier.push(v);
    }
  }
  return view;
}

std::size_t FragmentSet::fragment_count() const {
  // Bitmap scan instead of hashing every node's leader: O(n) with a
  // touched-only reset, no allocation after the first call.
  const std::size_t n = frag_.size();
  if (seen_.size() < n) seen_.assign(n, 0);
  std::size_t count = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (seen_[frag_[u]] == 0) {
      seen_[frag_[u]] = 1;
      ++count;
    }
  }
  for (NodeId u = 0; u < n; ++u) seen_[frag_[u]] = 0;
  return count;
}

std::vector<NodeId> FragmentSet::merge(
    std::span<const std::pair<NodeId, MergeCandidate>> selected,
    std::unordered_set<NodeId>& passive, bool retain_passive_id) {
  const std::size_t n = frag_.size();
  // Union fragments over chosen edges (union-find over node ids; first
  // unite members with their leader so leader sets represent groups).
  graph::UnionFind dsu(n);
  for (NodeId u = 0; u < n; ++u) dsu.unite(u, frag_[u]);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    EMST_ASSERT_MSG(i == 0 || selected[i - 1].first < selected[i].first,
                    "selected candidates must be sorted by leader");
    EMST_ASSERT(selected[i].second.valid());
    dsu.unite(selected[i].second.from, selected[i].second.to);
  }

  // Distinct old leaders in first-occurrence (node-id) order — the group
  // walk below is deterministic without hashing the whole leader array.
  if (seen_.size() < n) seen_.assign(n, 0);
  std::vector<NodeId> old_leaders;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId l = frag_[u];
    if (seen_[l] == 0) {
      seen_[l] = 1;
      old_leaders.push_back(l);
    }
  }
  for (const NodeId l : old_leaders) seen_[l] = 0;

  // Per-group bookkeeping, keyed by dsu representative. Group count is at
  // most the fragment count, so the maps stay small; they are only ever
  // probed (never iterated), so hash order cannot leak into results.
  struct Group {
    std::uint32_t members = 0;     ///< old fragments in the group
    NodeId passive_leader = kNone;
    NodeId chosen = kNone;
    MergeCandidate core{};         ///< minimum selected edge in the group
  };
  std::unordered_map<NodeId, Group> groups;
  groups.reserve(old_leaders.size());
  for (const NodeId l : old_leaders) ++groups[dsu.find(l)].members;
  for (const auto& [leader, c] : selected) {
    Group& g = groups[dsu.find(c.from)];
    if (candidate_less(c, g.core)) g.core = c;
  }
  for (const NodeId l : old_leaders) {
    if (passive.count(l) == 0) continue;
    Group& g = groups[dsu.find(l)];
    if (g.members > 1) {
      EMST_ASSERT_MSG(g.passive_leader == kNone,
                      "at most one passive fragment per group");
    }
    g.passive_leader = l;
  }

  // Decide each group's new leader (first-leader visit decides; later
  // visits see chosen already set).
  std::vector<std::pair<NodeId, NodeId>> passive_transfers;  // old → new
  for (const NodeId l : old_leaders) {
    Group& g = groups[dsu.find(l)];
    if (g.chosen != kNone) continue;
    if (g.members == 1) {
      // Unmerged fragment: leader (and passivity) unchanged.
      g.chosen = l;
      continue;
    }
    NodeId chosen = g.passive_leader;
    if (chosen == kNone || !retain_passive_id) {
      // Core edge = minimum selected edge inside the group (it is the
      // mutual MOE); the new leader is its higher-id endpoint.
      EMST_ASSERT(g.core.valid());
      chosen = std::max(g.core.from, g.core.to);
    }
    g.chosen = chosen;
    if (g.passive_leader != kNone && g.passive_leader != chosen) {
      // Passivity survives the merge (the giant keeps only accepting).
      passive_transfers.emplace_back(g.passive_leader, chosen);
    }
  }
  for (const auto& [old_leader, new_leader] : passive_transfers) {
    passive.erase(old_leader);
    passive.insert(new_leader);
  }

  // Add the chosen MOE edges to the forest (dedupe mutual picks by
  // canonical endpoint pair).
  std::unordered_set<std::uint64_t> added;
  added.reserve(selected.size());
  for (const auto& [leader, c] : selected) {
    if (!added.insert(pack_pair(c.from, c.to)).second) continue;
    add_tree_edge(graph::Edge{c.from, c.to, c.w}.canonical());
  }

  // Relabel nodes; the caller announces the changed ones.
  std::vector<NodeId> changed;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId nl = groups.at(dsu.find(frag_[u])).chosen;
    if (nl != frag_[u]) {
      frag_[u] = nl;
      changed.push_back(u);
    }
  }
  return changed;
}

std::vector<NodeId> FragmentSet::repair(const std::vector<bool>& down) {
  const std::size_t n = frag_.size();
  // Remove tree edges touching a down node; rebuild the forest.
  std::vector<graph::Edge> kept;
  kept.reserve(tree_.size());
  for (const graph::Edge& e : tree_) {
    if (!down[e.u] && !down[e.v]) kept.push_back(e);
  }
  tree_ = std::move(kept);
  for (auto& adj : tree_adj_) adj.clear();
  for (const graph::Edge& e : tree_) {
    tree_adj_[e.u].push_back(e.v);
    tree_adj_[e.v].push_back(e.u);
  }
  graph::UnionFind dsu(n);
  for (const graph::Edge& e : tree_) dsu.unite(e.u, e.v);
  // Surviving components are subsets of single old fragments, so every
  // live member of a component agrees on the old leader.
  std::unordered_map<NodeId, NodeId> comp_leader;
  for (NodeId u = 0; u < n; ++u) {
    if (down[u]) continue;
    auto [it, inserted] = comp_leader.try_emplace(dsu.find(u), u);
    if (!inserted && u < it->second) it->second = u;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (down[u]) continue;
    const NodeId old = frag_[u];
    if (!down[old] && dsu.find(old) == dsu.find(u))
      comp_leader[dsu.find(u)] = old;
  }
  std::vector<NodeId> changed;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId nl = down[u] ? u : comp_leader.at(dsu.find(u));
    if (nl == frag_[u]) continue;
    frag_[u] = nl;
    if (!down[u]) changed.push_back(u);
  }
  return changed;
}

}  // namespace emst::proto
