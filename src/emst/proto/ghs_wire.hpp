// GHS message vocabulary with a compact POD wire codec.
//
// The eight message types of Gallager–Humblet–Spira (1983, §3) plus the
// paper's §V-A announcement, shared by every GHS-family driver: the
// asynchronous classic driver sends them as real in-flight `GhsMsg` values
// through the engines; the phase-synchronous choreographed driver bills
// their worst-case sizes per logical message (`max_encoded_bits`).
//
// Every message knows its encoded size under a `WireContext`
// (`encoded_bits`, tag included) and can round-trip through BitWriter /
// BitReader (`encode` writes the payload — the 3-bit type tag is written
// by the variant-level `encode(GhsMsg)`; `decode` mirrors it). Field
// widths:
//   CONNECT      tag + level
//   INITIATE     tag + level + fragment + state
//   TEST         tag + level + fragment
//   ACCEPT / REJECT / CHANGE-ROOT   tag only
//   REPORT       tag + presence flag [+ edge index]  (kInfEdge ⇒ absent)
//   ANNOUNCE     tag + fragment
// Fragment names use `ctx.frag_bits`: core-edge indices (edge_bits) in the
// classic protocol, leader node ids (id_bits) in the sync protocol.
//
// The `sim::WireFormat<GhsMsg>` specialization at the bottom is the engine
// codec hook: drivers configure `net.wire_format().ctx` once per run and
// every send is measured automatically (sim/wire.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <variant>

#include "emst/proto/wire.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/wire.hpp"

namespace emst::proto {

/// Edges are identified by their index in the topology's canonical edge
/// list; comparing indices is the canonical total order on weights.
using EdgeIndex = std::uint32_t;
inline constexpr std::uint64_t kInfEdge =
    std::numeric_limits<std::uint64_t>::max();

/// Message types of the classical GHS protocol (plus the §V-A announcement),
/// for per-type accounting. Values double as the wire tag and as the
/// `GhsMsg` variant index — keep all three orders in sync.
enum class GhsMsgType : std::uint8_t {
  kConnect,
  kInitiate,
  kTest,
  kAccept,
  kReject,
  kReport,
  kChangeRoot,
  kAnnounce,
  kTypeCount,
};

[[nodiscard]] const char* ghs_msg_type_name(GhsMsgType type);

/// Map a GHS wire type onto the telemetry message-kind vocabulary (they are
/// 1:1; telemetry just adds the non-GHS kinds on top).
[[nodiscard]] constexpr sim::MsgKind to_msg_kind(GhsMsgType type) {
  switch (type) {
    case GhsMsgType::kConnect: return sim::MsgKind::kConnect;
    case GhsMsgType::kInitiate: return sim::MsgKind::kInitiate;
    case GhsMsgType::kTest: return sim::MsgKind::kTest;
    case GhsMsgType::kAccept: return sim::MsgKind::kAccept;
    case GhsMsgType::kReject: return sim::MsgKind::kReject;
    case GhsMsgType::kReport: return sim::MsgKind::kReport;
    case GhsMsgType::kChangeRoot: return sim::MsgKind::kChangeRoot;
    case GhsMsgType::kAnnounce: return sim::MsgKind::kAnnounce;
    case GhsMsgType::kTypeCount: break;
  }
  return sim::MsgKind::kData;
}

/// 8 message types fit a 3-bit tag.
inline constexpr std::uint32_t kGhsTagBits = 3;
/// Node state rides in INITIATE (kFind / kFound reachable on the wire).
inline constexpr std::uint32_t kGhsStateBits = 2;

enum class GhsNodeState : std::uint8_t { kSleeping, kFind, kFound };

struct GhsConnect {
  std::uint32_t level = 0;

  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kGhsTagBits + ctx.level_bits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(level, ctx.level_bits);
  }
  [[nodiscard]] static GhsConnect decode(BitReader& r, const WireContext& ctx) {
    return {static_cast<std::uint32_t>(r.read(ctx.level_bits))};
  }
  [[nodiscard]] bool operator==(const GhsConnect&) const = default;
};

struct GhsInitiate {
  std::uint32_t level = 0;
  EdgeIndex frag = 0;
  GhsNodeState state = GhsNodeState::kFind;

  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kGhsTagBits + ctx.level_bits + ctx.frag_bits + kGhsStateBits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(level, ctx.level_bits);
    w.write(frag, ctx.frag_bits);
    w.write(static_cast<std::uint64_t>(state), kGhsStateBits);
  }
  [[nodiscard]] static GhsInitiate decode(BitReader& r,
                                          const WireContext& ctx) {
    GhsInitiate m;
    m.level = static_cast<std::uint32_t>(r.read(ctx.level_bits));
    m.frag = static_cast<EdgeIndex>(r.read(ctx.frag_bits));
    m.state = static_cast<GhsNodeState>(r.read(kGhsStateBits));
    return m;
  }
  [[nodiscard]] bool operator==(const GhsInitiate&) const = default;
};

struct GhsTest {
  std::uint32_t level = 0;
  EdgeIndex frag = 0;

  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kGhsTagBits + ctx.level_bits + ctx.frag_bits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(level, ctx.level_bits);
    w.write(frag, ctx.frag_bits);
  }
  [[nodiscard]] static GhsTest decode(BitReader& r, const WireContext& ctx) {
    GhsTest m;
    m.level = static_cast<std::uint32_t>(r.read(ctx.level_bits));
    m.frag = static_cast<EdgeIndex>(r.read(ctx.frag_bits));
    return m;
  }
  [[nodiscard]] bool operator==(const GhsTest&) const = default;
};

struct GhsAccept {
  [[nodiscard]] std::uint32_t encoded_bits(const WireContext&) const noexcept {
    return kGhsTagBits;
  }
  void encode(BitWriter&, const WireContext&) const {}
  [[nodiscard]] static GhsAccept decode(BitReader&, const WireContext&) {
    return {};
  }
  [[nodiscard]] bool operator==(const GhsAccept&) const = default;
};

struct GhsReject {
  [[nodiscard]] std::uint32_t encoded_bits(const WireContext&) const noexcept {
    return kGhsTagBits;
  }
  void encode(BitWriter&, const WireContext&) const {}
  [[nodiscard]] static GhsReject decode(BitReader&, const WireContext&) {
    return {};
  }
  [[nodiscard]] bool operator==(const GhsReject&) const = default;
};

struct GhsReport {
  std::uint64_t best = kInfEdge;  ///< edge index of subtree MOE, or kInfEdge

  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kGhsTagBits + 1 + (best != kInfEdge ? ctx.edge_bits : 0);
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    if (best != kInfEdge) {
      w.write(1, 1);
      w.write(best, ctx.edge_bits);
    } else {
      w.write(0, 1);  // "no outgoing edge" needs no index field
    }
  }
  [[nodiscard]] static GhsReport decode(BitReader& r, const WireContext& ctx) {
    GhsReport m;
    m.best = r.read(1) != 0 ? r.read(ctx.edge_bits) : kInfEdge;
    return m;
  }
  [[nodiscard]] bool operator==(const GhsReport&) const = default;
};

struct GhsChangeRoot {
  [[nodiscard]] std::uint32_t encoded_bits(const WireContext&) const noexcept {
    return kGhsTagBits;
  }
  void encode(BitWriter&, const WireContext&) const {}
  [[nodiscard]] static GhsChangeRoot decode(BitReader&, const WireContext&) {
    return {};
  }
  [[nodiscard]] bool operator==(const GhsChangeRoot&) const = default;
};

/// §V-A modification: local broadcast of a node's (new) fragment name.
struct GhsAnnounce {
  EdgeIndex frag = 0;

  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kGhsTagBits + ctx.frag_bits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(frag, ctx.frag_bits);
  }
  [[nodiscard]] static GhsAnnounce decode(BitReader& r,
                                          const WireContext& ctx) {
    return {static_cast<EdgeIndex>(r.read(ctx.frag_bits))};
  }
  [[nodiscard]] bool operator==(const GhsAnnounce&) const = default;
};

/// Alternative order == GhsMsgType order == wire tag (static_asserted in
/// ghs_wire.cpp).
using GhsMsg = std::variant<GhsConnect, GhsInitiate, GhsTest, GhsAccept,
                            GhsReject, GhsReport, GhsChangeRoot, GhsAnnounce>;

[[nodiscard]] inline GhsMsgType type_of(const GhsMsg& m) noexcept {
  return static_cast<GhsMsgType>(m.index());
}

/// Whole-frame size (tag + payload) of a concrete message.
[[nodiscard]] inline std::uint32_t encoded_bits(
    const GhsMsg& m, const WireContext& ctx) noexcept {
  return std::visit([&](const auto& p) { return p.encoded_bits(ctx); }, m);
}

/// Serialize tag + payload; `decode_ghs` mirrors it exactly.
void encode(const GhsMsg& m, BitWriter& w, const WireContext& ctx);
[[nodiscard]] GhsMsg decode_ghs(BitReader& r, const WireContext& ctx);

/// Worst-case whole-frame size of a message type under `ctx` — what the
/// phase-synchronous choreographed driver bills per logical message (it
/// never materializes payloads, so it cannot use the REPORT presence
/// optimization the actor driver gets for free).
[[nodiscard]] std::uint32_t max_encoded_bits(GhsMsgType type,
                                             const WireContext& ctx) noexcept;

}  // namespace emst::proto

namespace emst::sim {

/// Engine codec hook (sim/wire.hpp): set `ctx` on the engine's
/// `wire_format()` once per run; every unicast/broadcast is then measured.
template <>
struct WireFormat<proto::GhsMsg> {
  static constexpr bool kMeasured = true;
  proto::WireContext ctx{};
  [[nodiscard]] std::uint32_t bits(const proto::GhsMsg& m) const noexcept {
    return proto::encoded_bits(m, ctx);
  }
};

}  // namespace emst::sim
