// Co-NNT message vocabulary with a compact POD wire codec (paper §VI).
//
// Three message types: REQUEST (a searching node broadcasts its quantized
// coordinates), REPLY (a higher-ranked hearer answers with its own
// coordinates — what the requester needs to measure the distance), and
// CONNECT (a bare "you are my parent" notification). Coordinates quantize
// onto a 2^coord_bits × 2^coord_bits grid over the unit square; with
// `WireContext::for_topology` the pitch is ≈ 1/(2n), far below the Θ(1/√n)
// node spacing, so quantization never changes which neighbor is nearest.
//
// The `sim::WireFormat<ConntMsg>` specialization at the bottom is the
// engine codec hook for the actor execution; the choreographed driver
// bills the same fixed per-type sizes via ambient meter bits, so both
// executions produce identical telemetry.
#pragma once

#include <cstdint>
#include <variant>

#include "emst/geometry/point.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/wire.hpp"

namespace emst::proto {

/// 3 message types fit a 2-bit tag.
inline constexpr std::uint32_t kConntTagBits = 2;

/// Quantize a unit-square coordinate onto the ctx grid (clamped: sampling
/// guarantees [0,1], but replies must stay in-range for any input).
[[nodiscard]] inline std::uint32_t quantize_coord(
    double coord, const WireContext& ctx) noexcept {
  const auto cells = static_cast<double>(std::uint64_t{1} << ctx.coord_bits);
  double scaled = coord * cells;
  if (scaled < 0.0) scaled = 0.0;
  if (scaled > cells - 1.0) scaled = cells - 1.0;
  return static_cast<std::uint32_t>(scaled);
}

struct ConntRequest {
  std::uint32_t x = 0;  ///< quantized sender coordinates
  std::uint32_t y = 0;

  [[nodiscard]] static ConntRequest from_point(geometry::Point2 p,
                                               const WireContext& ctx) {
    return {quantize_coord(p.x, ctx), quantize_coord(p.y, ctx)};
  }
  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kConntTagBits + 2 * ctx.coord_bits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(x, ctx.coord_bits);
    w.write(y, ctx.coord_bits);
  }
  [[nodiscard]] static ConntRequest decode(BitReader& r,
                                           const WireContext& ctx) {
    ConntRequest m;
    m.x = static_cast<std::uint32_t>(r.read(ctx.coord_bits));
    m.y = static_cast<std::uint32_t>(r.read(ctx.coord_bits));
    return m;
  }
  [[nodiscard]] bool operator==(const ConntRequest&) const = default;
};

struct ConntReply {
  std::uint32_t x = 0;  ///< quantized replier coordinates
  std::uint32_t y = 0;

  [[nodiscard]] static ConntReply from_point(geometry::Point2 p,
                                             const WireContext& ctx) {
    return {quantize_coord(p.x, ctx), quantize_coord(p.y, ctx)};
  }
  [[nodiscard]] std::uint32_t encoded_bits(
      const WireContext& ctx) const noexcept {
    return kConntTagBits + 2 * ctx.coord_bits;
  }
  void encode(BitWriter& w, const WireContext& ctx) const {
    w.write(x, ctx.coord_bits);
    w.write(y, ctx.coord_bits);
  }
  [[nodiscard]] static ConntReply decode(BitReader& r, const WireContext& ctx) {
    ConntReply m;
    m.x = static_cast<std::uint32_t>(r.read(ctx.coord_bits));
    m.y = static_cast<std::uint32_t>(r.read(ctx.coord_bits));
    return m;
  }
  [[nodiscard]] bool operator==(const ConntReply&) const = default;
};

struct ConntConnect {
  [[nodiscard]] std::uint32_t encoded_bits(const WireContext&) const noexcept {
    return kConntTagBits;
  }
  void encode(BitWriter&, const WireContext&) const {}
  [[nodiscard]] static ConntConnect decode(BitReader&, const WireContext&) {
    return {};
  }
  [[nodiscard]] bool operator==(const ConntConnect&) const = default;
};

/// Alternative order == wire tag.
using ConntMsg = std::variant<ConntRequest, ConntReply, ConntConnect>;

[[nodiscard]] inline std::uint32_t encoded_bits(
    const ConntMsg& m, const WireContext& ctx) noexcept {
  return std::visit([&](const auto& p) { return p.encoded_bits(ctx); }, m);
}

inline void encode(const ConntMsg& m, BitWriter& w, const WireContext& ctx) {
  w.write(m.index(), kConntTagBits);
  std::visit([&](const auto& p) { p.encode(w, ctx); }, m);
}

[[nodiscard]] inline ConntMsg decode_connt(BitReader& r,
                                           const WireContext& ctx) {
  switch (r.read(kConntTagBits)) {
    case 0: return ConntRequest::decode(r, ctx);
    case 1: return ConntReply::decode(r, ctx);
    case 2: return ConntConnect::decode(r, ctx);
    default: break;
  }
  EMST_ASSERT_MSG(false, "corrupt Co-NNT wire tag");
  return ConntConnect{};
}

}  // namespace emst::proto

namespace emst::sim {

/// Engine codec hook for the actor execution (sim/wire.hpp).
template <>
struct WireFormat<proto::ConntMsg> {
  static constexpr bool kMeasured = true;
  proto::WireContext ctx{};
  [[nodiscard]] std::uint32_t bits(const proto::ConntMsg& m) const noexcept {
    return proto::encoded_bits(m, ctx);
  }
};

}  // namespace emst::sim
