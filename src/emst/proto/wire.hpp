// Compact POD wire codec substrate (docs/ARCHITECTURE.md, proto layer).
//
// The paper charges every message as if it were O(log n) bits (§II); this
// module makes that assumption *measurable*. Every driver message gets a
// fixed-width field layout derived from the topology — node ids in
// ⌈lg n⌉ bits, edge indices in ⌈lg m⌉ bits, and so on — so the encoded
// size of any protocol frame is a deterministic function of (message,
// WireContext), computable without materializing bytes. `BitWriter` /
// `BitReader` provide the actual bit-packed encoding used by the
// round-trip tests (tests/proto_wire_test.cpp) to prove `encoded_bits()`
// tells the truth: encode() must emit exactly that many bits and decode()
// must read them back to an equal value.
//
// Layering: proto sits between the sim engines and the drivers. The
// engines only know the `sim::WireFormat<Msg>` customization point
// (sim/wire.hpp); this layer specializes it for the concrete message
// vocabularies (ghs_wire.hpp, connt_wire.hpp). Bits are telemetry-only
// context — they NEVER affect the energy math (sim/meter.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "emst/support/assert.hpp"

namespace emst::proto {

/// Number of bits needed to represent `v` (0 for v == 0); the classic
/// position-of-highest-set-bit, constexpr so field widths fold at compile
/// time where the topology size is static.
[[nodiscard]] constexpr std::uint32_t bit_width(std::uint64_t v) noexcept {
  std::uint32_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Fixed field widths shared by every codec of one deployment. Derived once
/// per run from the topology (`for_topology`); drivers may then override
/// `frag_bits` for their fragment-naming scheme (classic GHS names
/// fragments by core-edge index, sync GHS by leader node id).
struct WireContext {
  std::uint32_t id_bits = 1;     ///< node id ∈ [0, n)
  std::uint32_t edge_bits = 1;   ///< global edge index ∈ [0, m)
  std::uint32_t level_bits = 1;  ///< GHS level ≤ ⌊lg n⌋
  std::uint32_t count_bits = 2;  ///< subtree / fragment size ∈ [0, n]
  std::uint32_t coord_bits = 2;  ///< one quantized unit-square coordinate
  std::uint32_t frag_bits = 1;   ///< fragment name (edge index by default)

  /// Derive the widths for an n-node, m-edge deployment:
  ///  - id_bits    = ⌈lg n⌉              (max id is n-1)
  ///  - edge_bits  = ⌈lg m⌉              (max index is m-1)
  ///  - level_bits = ⌈lg(id_bits + 1)⌉   (GHS levels never exceed ⌊lg n⌋)
  ///  - count_bits = id_bits + 1         (sizes go up to n inclusive)
  ///  - coord_bits = id_bits + 1         (grid pitch ≈ 1/(2n) ≪ the Θ(1/√n)
  ///                                      node spacing, so quantized
  ///                                      coordinates stay distinguishable)
  ///  - frag_bits  = edge_bits           (classic GHS core-edge naming;
  ///                                      sync drivers reset it to id_bits)
  /// Every width is at least 1 so degenerate topologies still produce
  /// well-formed (nonzero) frame sizes.
  [[nodiscard]] static WireContext for_topology(std::size_t nodes,
                                                std::size_t edges) noexcept {
    WireContext ctx;
    ctx.id_bits = nodes > 1 ? bit_width(nodes - 1) : 1;
    ctx.edge_bits = edges > 1 ? bit_width(edges - 1) : 1;
    ctx.level_bits = bit_width(ctx.id_bits);
    ctx.count_bits = ctx.id_bits + 1;
    ctx.coord_bits = ctx.id_bits + 1;
    ctx.frag_bits = ctx.edge_bits;
    return ctx;
  }
};

/// MSB-first bit packer. Fields are appended most-significant-bit first
/// into a byte vector, so a dump of the buffer reads like the field layout.
class BitWriter {
 public:
  /// Append the low `width` bits of `value`. The value must fit (asserted):
  /// a silently truncated field would make encoded_bits() a lie.
  void write(std::uint64_t value, std::uint32_t width) {
    EMST_ASSERT(width <= 64);
    EMST_ASSERT_MSG(width == 64 || value < (std::uint64_t{1} << width),
                    "wire field overflow: value does not fit its width");
    for (std::uint32_t i = width; i-- > 0;) {
      const std::size_t byte = static_cast<std::size_t>(bits_ >> 3);
      if (byte == bytes_.size()) bytes_.push_back(0);
      const std::uint32_t off = 7 - static_cast<std::uint32_t>(bits_ & 7);
      bytes_[byte] |= static_cast<std::uint8_t>(((value >> i) & 1) << off);
      ++bits_;
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bits_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t bits_ = 0;
};

/// The matching MSB-first reader. Reading past the buffer is an assert —
/// decoders consume exactly `encoded_bits()` bits (round-trip tested).
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) noexcept
      : bytes_(&bytes) {}

  [[nodiscard]] std::uint64_t read(std::uint32_t width) {
    EMST_ASSERT(width <= 64);
    std::uint64_t value = 0;
    for (std::uint32_t i = 0; i < width; ++i) {
      const std::size_t byte = static_cast<std::size_t>(bits_ >> 3);
      EMST_ASSERT_MSG(byte < bytes_->size(), "wire decode past end of buffer");
      const std::uint32_t off = 7 - static_cast<std::uint32_t>(bits_ & 7);
      value = (value << 1) | (((*bytes_)[byte] >> off) & 1);
      ++bits_;
    }
    return value;
  }

  /// Bits consumed so far — the round-trip tests compare this against
  /// `encoded_bits()` after every decode.
  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bits_; }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::uint64_t bits_ = 0;
};

}  // namespace emst::proto
