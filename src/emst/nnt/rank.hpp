// Node ranking schemes for nearest-neighbour trees (paper §VI).
//
// Co-NNT connects every node (except the top-ranked one) to its nearest node
// of *higher* rank. The paper's ranking is the diagonal sweep
//   rank(u) < rank(v)  iff  (xu+yu < xv+yv) or (xu+yu = xv+yv and yu < yv),
// chosen so that every node's *potential region* Ru (the part of the unit
// square strictly above its diagonal) subtends a potential angle ≥ ½ radian
// (Lemma 6.1), which bounds the nearest-higher-rank distance (Lemma 6.2) and
// keeps it within Θ(√(log n / n)) WHP (Lemma 6.3).
//
// The axis ranking of Khan–Pandurangan–Kumar [15] ((x, y) lexicographic) is
// provided as an ablation: it also yields an O(1)-approximate NNT, but nodes
// near the right edge may need to search far, which is why the paper replaced
// it in the unit-disk setting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"

namespace emst::nnt {

enum class RankScheme {
  kDiagonal,  ///< paper §VI: (x+y, y), then node id
  kAxis,      ///< [15]: (x, y), then node id
};

/// Strict total order; node ids break (measure-zero) coordinate ties.
[[nodiscard]] bool rank_less(RankScheme scheme,
                             std::span<const geometry::Point2> points,
                             graph::NodeId u, graph::NodeId v);

/// The potential distance L_u: the distance from u to the farthest point of
/// the closure of its potential region R_u (u can stop probing beyond it).
[[nodiscard]] double potential_distance(RankScheme scheme, geometry::Point2 u);

/// The potential angle α_u = 2·A_u / L_u² of Lemma 6.1 (diagonal scheme
/// only). Used by tests to check α_u ≥ ½.
[[nodiscard]] double potential_angle(geometry::Point2 u);

/// Brute-force nearest higher-ranked node (kNoNode for the top-ranked one).
/// O(n) per call; validation/reference only.
[[nodiscard]] graph::NodeId brute_force_parent(
    RankScheme scheme, std::span<const geometry::Point2> points,
    graph::NodeId u);

}  // namespace emst::nnt
