// KP-NNT — the coordinate-free nearest-neighbour-tree baseline of
// Khan–Pandurangan [14] / Khan–Pandurangan–Kumar [15], discussed in §III:
// "The distributed algorithm of [14, 15] requires only O(log n) energy, but
// it gives an O(log n)-approximation to the MST."
//
// Nodes know NO coordinates. Each node draws a random rank (a seeded random
// permutation stands in for the random choices) and connects to its nearest
// node of higher rank, located with the same doubling-radius probe protocol
// as Co-NNT but with the potential distance replaced by the worst case √2 —
// without geometry there is nothing better to stop on.
//
// Expected totals: the node at rank percentile k/n finds a higher-ranked
// node within ≈ √(1/k) · √(1/n)-ish distance, so Σᵤ energy ≈ Σₖ 1/k =
// Θ(log n) — an O(log n) energy / O(log n)-approximation trade sitting
// strictly between GHS and Co-NNT. This is the paper's related-work
// comparison point, reproduced so the bench table can show all four rows.
#pragma once

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"

namespace emst::nnt {

struct KpNntOptions {
  std::uint64_t rank_seed = 0xf005ba11ULL;  ///< the nodes' random choices
  geometry::PathLoss pathloss{};
  double n_estimate_factor = 1.0;
};

struct KpNntResult {
  std::vector<graph::NodeId> parent;  ///< kNoNode for the top-ranked node
  std::vector<graph::Edge> tree;
  std::vector<std::uint32_t> rank;    ///< the drawn ranks (for validation)
  sim::Accounting totals;
  std::size_t max_probe_rounds = 0;
  double max_connect_distance = 0.0;
};

[[nodiscard]] KpNntResult run_kp_nnt(const sim::Topology& topo,
                                     const KpNntOptions& options = {});

}  // namespace emst::nnt
