// Defines (and internally composes) the entry points it declares.
#define EMST_NO_DEPRECATE
#include "emst/nnt/connt.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <variant>

#include "emst/nnt/connt_actor.hpp"
#include "emst/proto/connt_wire.hpp"
#include "emst/sim/distributed_network.hpp"
#include "emst/sim/engine_factory.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/parallel.hpp"

namespace emst::nnt {
namespace {

/// Serial actor env: handler actions become immediate engine calls. The
/// telemetry context (meter kind) is phase-scoped by the choreography, so
/// the per-effect kind/fragment parameters are ignored here — exactly the
/// pre-actor inline behavior.
template <typename Engine>
struct SerialConntEnv {
  Engine* net;
  CoNntResult* result;
  std::size_t round = 0;
  graph::NodeId cur = graph::kNoNode;  ///< node of the running connect step

  void unicast(graph::NodeId u, graph::NodeId to, sim::MsgKind,
               std::uint8_t, std::uint32_t, double, proto::ConntMsg msg) {
    net->unicast(u, to, std::move(msg));
  }
  void broadcast(graph::NodeId u, double radius, sim::MsgKind, std::uint8_t,
                 std::uint32_t, proto::ConntMsg msg) {
    net->broadcast(u, radius, std::move(msg));
  }
  void defer(const sim::Delivery<proto::ConntMsg>&) {}
  void note(std::uint32_t a, std::uint64_t b) {
    const double dist = std::bit_cast<double>(b);
    result->parent[cur] = a;
    result->tree.push_back(graph::Edge{cur, a, dist}.canonical());
    result->max_connect_distance =
        std::max(result->max_connect_distance, dist);
    result->max_probe_rounds = std::max(result->max_probe_rounds, round);
  }
};

/// Replay sink for the rank-resident execution: the engine stages and
/// charges effects itself; the driver folds step flags into its
/// unresolved/searching model and notes into the tree bookkeeping.
struct DistConntSink {
  CoNntResult* result;
  std::vector<graph::NodeId>* out = nullptr;  ///< searching / still_unresolved
  std::size_t round = 0;
  bool probe_mode = false;

  void on_send(std::uint8_t, double) {}
  void on_step_node(graph::NodeId u, std::uint8_t flag) {
    if (probe_mode) {
      if (flag == kConntStepSearching) out->push_back(u);
    } else {
      if (flag == kConntStepUnresolved) out->push_back(u);
    }
  }
  void on_note(graph::NodeId u, std::uint32_t a, std::uint64_t b) {
    const double dist = std::bit_cast<double>(b);
    result->parent[u] = a;
    result->tree.push_back(graph::Edge{u, a, dist}.canonical());
    result->max_connect_distance =
        std::max(result->max_connect_distance, dist);
    result->max_probe_rounds = std::max(result->max_probe_rounds, round);
  }
};

template <typename Engine, typename Topo>
CoNntResult run_connt_actor_impl(const Topo& topo,
                                 const CoNntOptions& options) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(n >= 1);
  const double n_est =
      std::max(2.0, static_cast<double>(n) * options.n_estimate_factor);
  const auto points = std::span<const geometry::Point2>(topo.points());

  // Fail-stop only (docs/ROBUSTNESS.md): crashes are survived by epoch
  // restart; message loss would need an ARQ layer Co-NNT doesn't have.
  const bool faulty = options.faults.enabled();
  EMST_ASSERT_MSG(!options.arq.enabled, "Co-NNT has no ARQ layer");
  EMST_ASSERT_MSG(options.faults.loss == 0.0 && !options.faults.use_gilbert,
                  "Co-NNT accepts crash-only (fail-stop) fault models; "
                  "message loss needs ARQ recovery (sync GHS / EOPT)");
  Engine net(sim::make_engine<Engine>(topo, options.pathloss,
                                      /*unbounded_broadcast=*/true,
                                      /*delays=*/{}, options.faults,
                                      options.telemetry, options.threads,
                                      options.ranks));
  if (options.oracle != nullptr) net.attach_oracle(options.oracle);
  // Codec hook: requests and replies carry grid-quantized coordinates, the
  // connect message a bare tag; widths come from the topology size.
  net.wire_format().ctx = proto::WireContext::for_topology(n, topo.edge_count());
  const proto::WireContext& ctx = net.wire_format().ctx;
  if (options.track_per_node_energy) net.meter().enable_per_node(n);
  if (options.record_breakdown) net.meter().enable_breakdown();

  CoNntResult result;
  ConntActor<Topo> actor(topo, options.scheme, n_est, ctx);
  std::uint64_t rank_invocations = 0;

  // Fail-stop epochs: an epoch excludes the nodes crashed when it starts and
  // runs the full doubling protocol among the rest. If the crashed set ever
  // deviates from that exclusion snapshot mid-epoch (a participant died, or
  // an excluded node came back and replied), replies may have been lost and
  // the epoch's tree is untrusted — discard it and restart among the current
  // survivors. A clean epoch saw every participant alive throughout and
  // every dead node silent throughout, so it computes exactly the NNT of the
  // survivor sub-topology. Permanent windows bound the epoch count.
  std::vector<char> excluded(n, 0);
  bool dirty = false;
  auto snapshot_excluded = [&] {
    for (graph::NodeId u = 0; u < n; ++u) {
      excluded[u] = net.faults().crashed(u) ? 1 : 0;
    }
  };
  auto scan_dirty = [&] {
    if (!faulty || dirty) return;
    for (graph::NodeId u = 0; u < n; ++u) {
      if ((net.faults().crashed(u) ? 1 : 0) != excluded[u]) {
        dirty = true;
        return;
      }
    }
  };
  const std::size_t max_epochs = faulty ? n + 2 : 1;

  if constexpr (sim::DistributedEngine<Engine>) {
    // Rank-resident execution (docs/DISTRIBUTED.md §6): handlers and step
    // sweeps run inside the ranks; the choreography below mirrors the
    // serial branch phase for phase, with each sweep shipped as an
    // ACTOR_STEP collective and each delivery round as an effect-ledger
    // exchange. The fault clock, the phase boundaries and the dirty scan
    // stay parent-side — they own determinism.
    net.install_actor(actor, faulty);
    DistConntSink sink{&result};
    while (true) {
      result.parent.assign(n, graph::kNoNode);
      result.tree.clear();
      result.max_probe_rounds = 0;
      result.max_connect_distance = 0.0;
      dirty = false;
      if (faulty) snapshot_excluded();
      net.actor_step(proto::kDistStepConntReset, 0, {}, {}, sink);
      std::vector<graph::NodeId> unresolved;
      unresolved.reserve(n);
      for (graph::NodeId u = 0; u < n; ++u) {
        if (!faulty || excluded[u] == 0) unresolved.push_back(u);
      }

      std::vector<graph::NodeId> searching;
      std::vector<graph::NodeId> still_unresolved;
      for (std::size_t round = 1; !unresolved.empty(); ++round) {
        if (faulty) net.faults().note_phase_boundary();
        net.meter().set_kind(sim::MsgKind::kRequest);
        searching.clear();
        sink.probe_mode = true;
        sink.out = &searching;
        sink.round = round;
        net.actor_step(proto::kDistStepConntProbe, round, {}, unresolved,
                       sink);
        net.meter().set_kind(sim::MsgKind::kReply);
        (void)net.actor_collect_round(sink);  // REQUESTs delivered in-rank
        scan_dirty();
        (void)net.actor_collect_round(sink);  // REPLYs delivered in-rank
        scan_dirty();
        net.meter().set_kind(sim::MsgKind::kConnection);
        still_unresolved.clear();
        sink.probe_mode = false;
        sink.out = &still_unresolved;
        net.actor_step(proto::kDistStepConntConnect, 0, {}, searching, sink);
        (void)net.actor_collect_round(sink);  // drain CONNECT deliveries
        scan_dirty();
        unresolved = still_unresolved;
      }

      if (!faulty || !dirty) break;
      EMST_ASSERT_MSG(++result.epochs <= max_epochs,
                      "Co-NNT exceeded fail-stop epoch cap");
    }
    rank_invocations = net.actor_harvest(actor);
  } else {
    SerialConntEnv<Engine> env{&net, &result};
    while (true) {
      result.parent.assign(n, graph::kNoNode);
      result.tree.clear();
      result.max_probe_rounds = 0;
      result.max_connect_distance = 0.0;
      dirty = false;
      if (faulty) snapshot_excluded();
      actor.reset(net.faults(), faulty);
      std::vector<graph::NodeId> unresolved;
      unresolved.reserve(n);
      for (graph::NodeId u = 0; u < n; ++u) {
        if (!faulty || excluded[u] == 0) unresolved.push_back(u);
      }

      for (std::size_t round = 1; !unresolved.empty(); ++round) {
        // Each doubling round is a protocol phase boundary for the chaos
        // controller (CrashWaveAtPhaseBoundary keys on this).
        if (faulty) net.faults().note_phase_boundary();
        // Phase step 1: every still-searching node broadcasts a REQUEST.
        net.meter().set_kind(sim::MsgKind::kRequest);
        env.round = round;
        std::vector<graph::NodeId> searching;
        for (const graph::NodeId u : unresolved) {
          if (actor.step_probe(u, round, env) == kConntStepSearching)
            searching.push_back(u);
        }
        // Phase step 2: higher-ranked hearers REPLY.
        net.meter().set_kind(sim::MsgKind::kReply);
        auto requests = net.collect_round();
        scan_dirty();
        for (const auto& d : requests) actor.on_message(d, env);
        // Phase step 3: requesters CONNECT to their nearest replier.
        auto replies = net.collect_round();
        scan_dirty();
        for (const auto& d : replies) actor.on_message(d, env);
        net.meter().set_kind(sim::MsgKind::kConnection);
        std::vector<graph::NodeId> still_unresolved;
        for (const graph::NodeId u : searching) {
          env.cur = u;
          if (actor.step_connect(u, env) != kConntStepConnected)
            still_unresolved.push_back(u);
        }
        (void)net.collect_round();  // drain CONNECT deliveries
        scan_dirty();
        unresolved = std::move(still_unresolved);
      }

      if (!faulty || !dirty) break;
      EMST_ASSERT_MSG(++result.epochs <= max_epochs,
                      "Co-NNT exceeded fail-stop epoch cap");
    }
  }

  graph::sort_edges(result.tree);
  result.totals = net.meter().totals();
  result.fault_stats = net.fault_stats();
  result.injected_crashes = net.faults().injected_schedule();
  result.per_node_energy = net.meter().per_node();
  if (net.meter().breakdown_enabled()) {
    result.energy_breakdown = net.meter().breakdown();
    result.breakdown_recorded = true;
  }
  result.telemetry = net.meter().telemetry();
  result.handler_invocations = actor.invocations();
  result.rank_handler_invocations = rank_invocations;
  return result;
}

}  // namespace

template <typename Topo>
CoNntResult run_connt(const Topo& topo, const CoNntOptions& options) {
  // Fault-aware runs need real in-flight messages (suppression, crash drops,
  // the epoch-restart loop) — delegate to the actor execution, which models
  // them; the choreographed fast path below stays the fault-free harness.
  // Rank processes only exist in the actor execution (the choreographed
  // fast path has no network engine to distribute).
  if (options.faults.enabled() || options.ranks > 0)
    return run_connt_actor(topo, options);
  const std::size_t n = topo.node_count();
  EMST_ASSERT(n >= 1);
  const double n_est = std::max(2.0, static_cast<double>(n) * options.n_estimate_factor);
  const auto points = std::span<const geometry::Point2>(topo.points());

  CoNntResult result;
  result.parent.assign(n, graph::kNoNode);
  EMST_ASSERT_MSG(!options.arq.enabled,
                  "Co-NNT has no loss recovery; ARQ unsupported");
  sim::EnergyMeter meter(options.pathloss);
  if (options.track_per_node_energy) meter.enable_per_node(n);
  if (options.record_breakdown) meter.enable_breakdown();
  meter.attach_telemetry(options.telemetry);
  // All three Co-NNT message types have fixed widths for a given topology,
  // so the choreographed charges bill exactly what the actor codec bills.
  const proto::WireContext wire_ctx =
      proto::WireContext::for_topology(n, topo.edge_count());
  const std::uint32_t request_bits =
      proto::ConntRequest{}.encoded_bits(wire_ctx);
  const std::uint32_t reply_bits = proto::ConntReply{}.encoded_bits(wire_ctx);
  const std::uint32_t connect_bits =
      proto::ConntConnect{}.encoded_bits(wire_ctx);

  std::vector<graph::NodeId> unresolved(n);
  for (graph::NodeId u = 0; u < n; ++u) unresolved[u] = u;

  // Per-round probe precompute, parallelized when options.threads > 1. The
  // geometry query (nodes_within) dominates the round; each slot is written
  // by exactly one task, so the serial charge loop below sees identical
  // inputs for every thread count.
  struct Probe {
    bool active = false;
    double radius = 0.0;
    std::vector<sim::NodeId> heard;
  };
  std::vector<Probe> probes;
  const std::size_t workers = options.threads > 1 ? options.threads : 1;

  for (std::size_t round = 1; !unresolved.empty(); ++round) {
    probes.assign(unresolved.size(), Probe{});
    support::parallel_for(
        unresolved.size(),
        [&](std::size_t i) {
          const graph::NodeId u = unresolved[i];
          // m = ⌈lg(n·L_u²)⌉ probes suffice to cover the potential region.
          const ProbePlan plan(options.scheme, points[u], n_est);
          if (round > plan.max_rounds) return;  // top-ranked node: terminate
          Probe& probe = probes[i];
          probe.active = true;
          probe.radius = ProbePlan::radius(round, n_est);
          probe.heard = topo.nodes_within(u, probe.radius);
        },
        workers);
    std::vector<graph::NodeId> still_unresolved;
    for (std::size_t i = 0; i < unresolved.size(); ++i) {
      const graph::NodeId u = unresolved[i];
      const Probe& probe = probes[i];
      if (!probe.active) continue;
      // REQUEST: one local broadcast carrying u's coordinates.
      meter.set_kind(sim::MsgKind::kRequest);
      meter.set_bits(request_bits);
      meter.charge_broadcast(u, probe.radius, probe.heard.size());
      // REPLIES from every higher-ranked node in range.
      meter.set_kind(sim::MsgKind::kReply);
      meter.set_bits(reply_bits);
      graph::NodeId best = graph::kNoNode;
      double best_d = 0.0;
      for (const sim::NodeId v : probe.heard) {
        if (!rank_less(options.scheme, points, u, v)) continue;
        const double d = topo.distance(v, u);
        meter.charge_unicast(v, u, d);
        if (best == graph::kNoNode || d < best_d || (d == best_d && v < best)) {
          best = v;
          best_d = d;
        }
      }
      if (best == graph::kNoNode) {
        still_unresolved.push_back(u);
        continue;
      }
      // CONNECTION to the nearest replier.
      meter.set_kind(sim::MsgKind::kConnection);
      meter.set_bits(connect_bits);
      meter.charge_unicast(u, best, best_d);
      result.parent[u] = best;
      result.tree.push_back(graph::Edge{u, best, best_d}.canonical());
      result.max_connect_distance = std::max(result.max_connect_distance, best_d);
      result.max_probe_rounds = std::max(result.max_probe_rounds, round);
    }
    // One request round, one reply round, one connection round.
    meter.clear_bits();
    meter.tick_rounds(3);
    unresolved = std::move(still_unresolved);
  }

  graph::sort_edges(result.tree);
  result.totals = meter.totals();
  result.per_node_energy = meter.per_node();
  if (meter.breakdown_enabled()) {
    result.energy_breakdown = meter.breakdown();
    result.breakdown_recorded = true;
  }
  result.telemetry = meter.telemetry();
  return result;
}

template <typename Topo>
CoNntResult run_connt_actor(const Topo& topo, const CoNntOptions& options) {
  if (options.ranks > 0) {
    return run_connt_actor_impl<sim::DistributedNetwork<proto::ConntMsg, Topo>,
                                Topo>(topo, options);
  }
  if (options.threads > 1) {
    return run_connt_actor_impl<sim::ShardedNetwork<proto::ConntMsg, Topo>,
                                Topo>(topo, options);
  }
  return run_connt_actor_impl<sim::Network<proto::ConntMsg, Topo>, Topo>(
      topo, options);
}

template CoNntResult run_connt<sim::Topology>(const sim::Topology&,
                                              const CoNntOptions&);
template CoNntResult run_connt<sim::ImplicitTopology>(
    const sim::ImplicitTopology&, const CoNntOptions&);
template CoNntResult run_connt_actor<sim::Topology>(const sim::Topology&,
                                                    const CoNntOptions&);
template CoNntResult run_connt_actor<sim::ImplicitTopology>(
    const sim::ImplicitTopology&, const CoNntOptions&);

}  // namespace emst::nnt
