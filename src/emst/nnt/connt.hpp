// Co-NNT — the coordinate-based O(1)-energy spanning tree (paper §VI,
// Thm 6.2).
//
// Every node u (knowing its own coordinates) probes for its nearest
// higher-ranked node with doubling radii rᵢ = √(2ⁱ/n), i = 1 … ⌈lg(n·L_u²)⌉:
//   - u locally broadcasts a REQUEST carrying its coordinates at power rᵢ
//     (cost rᵢ^α);
//   - every node v within rᵢ with rank(v) > rank(u) REPLIES (unicast,
//     cost d(u,v)^α);
//   - if any reply arrives, u sends a CONNECTION message to the nearest
//     replier and stops; otherwise it doubles the radius.
// A node that exhausts L_u without replies is the top-ranked node and simply
// terminates. The first round with a reply necessarily contains the global
// nearest higher-ranked node, so the output is exactly the NNT.
//
// Expected totals (Thm 6.2): O(n) messages and O(1) energy; the tree is an
// O(1) approximation of the MST in both Σ|e| and Σ|e|² (Thm 6.1).
#pragma once

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"
#include "emst/nnt/rank.hpp"
#include "emst/sim/run_config.hpp"
#include "emst/support/deprecated.hpp"

namespace emst::nnt {

/// Options embed the shared `sim::RunConfig` knobs. Co-NNT supports
/// pathloss / per-node / breakdown / telemetry. Crash-only (fail-stop)
/// fault models are survived by epoch restart on the actor execution
/// (docs/ROBUSTNESS.md) — `run_connt` forwards to the actor path when
/// faults are enabled; message-loss models stay unsupported (asserted),
/// the protocol has no loss recovery.
struct CoNntOptions : sim::RunConfig {
  RankScheme scheme = RankScheme::kDiagonal;
  /// Assumed network-size knowledge: the protocol needs only a Θ(n)
  /// estimate (Thm 6.2); scale the true n to emulate estimation error.
  double n_estimate_factor = 1.0;
};

struct CoNntResult {
  std::vector<graph::NodeId> parent;  ///< kNoNode for the top-ranked node
  std::vector<graph::Edge> tree;      ///< canonical order, n-1 edges
  sim::Accounting totals;
  std::size_t max_probe_rounds = 0;   ///< deepest doubling sequence used
  double max_connect_distance = 0.0;  ///< longest tree edge (Lemma 6.3 check)
  std::vector<double> per_node_energy;  ///< empty unless tracking enabled
  /// Per-phase × per-kind matrix (valid iff `record_breakdown` was set);
  /// Co-NNT splits into kRequest / kReply / kConnection kinds.
  sim::EnergyBreakdown energy_breakdown;
  bool breakdown_recorded = false;
  sim::Telemetry* telemetry = nullptr;
  /// Fault-layer drop counters (all zero for fault-free runs).
  sim::FaultStats fault_stats{};
  /// Protocol epochs executed (fail-stop restarts; 1 = clean run).
  std::size_t epochs = 1;
  /// Chaos-controller injections, in injection order (replayable).
  std::vector<sim::CrashWindow> injected_crashes;
  /// Execution-placement witnesses (docs/DISTRIBUTED.md §6): handler/step
  /// invocations performed by this process's actor vs the sum shipped home
  /// by the rank processes. Zero/zero on the choreographed fast path (it
  /// has no actor).
  std::uint64_t handler_invocations = 0;
  std::uint64_t rank_handler_invocations = 0;

  /// The algorithm-independent view (docs/API_TOUR.md). Non-owning.
  [[nodiscard]] RunReport report() const {
    RunReport out;
    out.tree = &tree;
    out.totals = totals;
    out.fragments = parent.size() - tree.size();
    out.faults = fault_stats;
    if (!per_node_energy.empty()) out.per_node_energy = &per_node_energy;
    if (breakdown_recorded) out.breakdown = &energy_breakdown;
    out.telemetry = telemetry;
    return out;
  }
};

/// Run the distributed Co-NNT construction. Probe radii may exceed the
/// topology's max radius (power-adaptive transmission; the spatial index
/// resolves deliveries). Templated over the topology backend
/// (`sim::Topology` or `sim::ImplicitTopology`; defined in connt.cpp,
/// explicitly instantiated for both) — the protocol only needs coordinates
/// and `nodes_within` probes, which both backends answer identically.
template <typename Topo>
EMST_DEPRECATED("use the emst::run facade (emst/run.hpp)")
[[nodiscard]] CoNntResult run_connt(const Topo& topo,
                                    const CoNntOptions& options = {});

/// The same protocol executed as a message-driven actor system over
/// Network<Msg> (REQUEST broadcast / REPLY unicast / CONNECTION unicast as
/// real in-flight messages). Cross-validates `run_connt`: identical parents,
/// energy, and message counts (tested); `run_connt` is the faster harness
/// path.
template <typename Topo>
[[nodiscard]] CoNntResult run_connt_actor(const Topo& topo,
                                          const CoNntOptions& options = {});

}  // namespace emst::nnt
