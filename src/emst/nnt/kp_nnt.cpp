#include "emst/nnt/kp_nnt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::nnt {

KpNntResult run_kp_nnt(const sim::Topology& topo, const KpNntOptions& options) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(n >= 1);
  const double n_est =
      std::max(2.0, static_cast<double>(n) * options.n_estimate_factor);

  KpNntResult result;
  result.parent.assign(n, graph::kNoNode);
  // Random ranks: a seeded Fisher–Yates permutation (each node's "random
  // coin flips"); rank comparison is then a plain integer comparison.
  result.rank.resize(n);
  std::iota(result.rank.begin(), result.rank.end(), 0u);
  support::Rng rank_rng(options.rank_seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rank_rng.uniform_int(i);
    std::swap(result.rank[i - 1], result.rank[j]);
  }

  sim::EnergyMeter meter(options.pathloss);
  std::vector<graph::NodeId> unresolved(n);
  std::iota(unresolved.begin(), unresolved.end(), 0u);

  const double diameter = std::sqrt(2.0);
  // Without coordinates the search must be prepared to cover the whole
  // square: m = ⌈lg(2n)⌉ doubling rounds reach the diameter.
  const auto max_rounds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::log2(2.0 * n_est))));
  for (std::size_t round = 1; !unresolved.empty(); ++round) {
    std::vector<graph::NodeId> still_unresolved;
    for (const graph::NodeId u : unresolved) {
      if (round > max_rounds) continue;  // top-ranked node: terminate
      const double radius = std::min(
          std::sqrt(std::pow(2.0, static_cast<double>(round)) / n_est),
          diameter);
      const std::vector<sim::NodeId> heard = topo.nodes_within(u, radius);
      meter.charge_broadcast(u, radius, heard.size());
      graph::NodeId best = graph::kNoNode;
      double best_d = 0.0;
      for (const sim::NodeId v : heard) {
        if (result.rank[v] <= result.rank[u]) continue;
        const double d = topo.distance(v, u);
        meter.charge_unicast(v, d);  // reply
        if (best == graph::kNoNode || d < best_d || (d == best_d && v < best)) {
          best = v;
          best_d = d;
        }
      }
      if (best == graph::kNoNode) {
        still_unresolved.push_back(u);
        continue;
      }
      meter.charge_unicast(u, best_d);  // connection
      result.parent[u] = best;
      result.tree.push_back(graph::Edge{u, best, best_d}.canonical());
      result.max_connect_distance =
          std::max(result.max_connect_distance, best_d);
      result.max_probe_rounds = std::max(result.max_probe_rounds, round);
    }
    meter.tick_rounds(3);
    unresolved = std::move(still_unresolved);
  }

  graph::sort_edges(result.tree);
  result.totals = meter.totals();
  return result;
}

}  // namespace emst::nnt
