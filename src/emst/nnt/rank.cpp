#include "emst/nnt/rank.hpp"

#include <algorithm>
#include <cmath>

#include "emst/support/assert.hpp"

namespace emst::nnt {
namespace {

/// Farthest distance from u to any of `vertices`.
double farthest(geometry::Point2 u, std::span<const geometry::Point2> vertices) {
  double best = 0.0;
  for (const geometry::Point2& v : vertices)
    best = std::max(best, geometry::distance(u, v));
  return best;
}

/// Area of the diagonal potential region {p ∈ [0,1]² : p.x+p.y > s}.
double diagonal_area(double s) {
  if (s <= 1.0) return 1.0 - 0.5 * s * s;          // square minus triangle
  const double t = 2.0 - s;                        // remaining triangle leg
  return 0.5 * t * t;
}

}  // namespace

bool rank_less(RankScheme scheme, std::span<const geometry::Point2> points,
               graph::NodeId u, graph::NodeId v) {
  EMST_ASSERT(u < points.size() && v < points.size());
  const geometry::Point2 pu = points[u];
  const geometry::Point2 pv = points[v];
  if (scheme == RankScheme::kDiagonal) {
    const double su = pu.x + pu.y;
    const double sv = pv.x + pv.y;
    if (su != sv) return su < sv;
    if (pu.y != pv.y) return pu.y < pv.y;
  } else {
    if (pu.x != pv.x) return pu.x < pv.x;
    if (pu.y != pv.y) return pu.y < pv.y;
  }
  return u < v;
}

double potential_distance(RankScheme scheme, geometry::Point2 u) {
  if (scheme == RankScheme::kDiagonal) {
    const double s = u.x + u.y;
    if (s <= 1.0) {
      // Closure vertices of R_u: (s,0), (1,0), (1,1), (0,1), (0,s).
      const geometry::Point2 verts[] = {
          {s, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {0.0, s}};
      return farthest(u, verts);
    }
    // Triangle (1, s-1), (1,1), (s-1, 1).
    const geometry::Point2 verts[] = {{1.0, s - 1.0}, {1.0, 1.0}, {s - 1.0, 1.0}};
    return farthest(u, verts);
  }
  // Axis scheme: R_u ≈ {p : p.x ≥ xu}; farthest point is one of its corners.
  const geometry::Point2 verts[] = {
      {1.0, 0.0}, {1.0, 1.0}, {u.x, 0.0}, {u.x, 1.0}};
  return farthest(u, verts);
}

double potential_angle(geometry::Point2 u) {
  const double s = u.x + u.y;
  const double area = diagonal_area(s);
  const double l = potential_distance(RankScheme::kDiagonal, u);
  if (l == 0.0) return 0.0;  // degenerate: u at the (1,1) corner
  return 2.0 * area / (l * l);
}

graph::NodeId brute_force_parent(RankScheme scheme,
                                 std::span<const geometry::Point2> points,
                                 graph::NodeId u) {
  graph::NodeId best = graph::kNoNode;
  double best_d = 0.0;
  for (graph::NodeId v = 0; v < points.size(); ++v) {
    if (v == u || !rank_less(scheme, points, u, v)) continue;
    const double d = geometry::distance(points[u], points[v]);
    if (best == graph::kNoNode || d < best_d ||
        (d == best_d && v < best)) {
      best = v;
      best_d = d;
    }
  }
  return best;
}

}  // namespace emst::nnt
