// Co-NNT as a node actor (docs/DISTRIBUTED.md §6).
//
// The per-node half of the coordinate-based O(1)-energy spanning tree
// (paper §VI): the REQUEST/REPLY message handlers plus the choreographed
// probe / connect / reset steps of each doubling round. The same actor code
// runs serially inside the driver (all in-process engines) and
// rank-resident inside the forked ranks of `sim::DistributedNetwork`; the
// env parameter decides whether an action stages immediately or becomes an
// effect-ledger record.
//
// Receiver-locality: `on_message` touches only delivery.to's state, the
// step methods only the stepped node's — the rank that owns a node can
// execute all of them. Reply selection compares the delivery distance
// doubles bit-for-bit (they ride the wire as raw bit images), so the chosen
// parent and tree edge are placement-independent.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/nnt/rank.hpp"
#include "emst/proto/connt_wire.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/support/assert.hpp"

namespace emst::nnt {

/// Per-node doubling schedule shared by the choreographed fast path and the
/// actor execution.
struct ProbePlan {
  std::size_t max_rounds = 0;

  ProbePlan(RankScheme scheme, geometry::Point2 p, double n_est) {
    const double lu = potential_distance(scheme, p);
    const double m_exact = std::log2(std::max(2.0, n_est * lu * lu));
    max_rounds = static_cast<std::size_t>(std::max(1.0, std::ceil(m_exact)));
  }

  [[nodiscard]] static double radius(std::size_t round, double n_est) {
    return std::min(
        std::sqrt(std::pow(2.0, static_cast<double>(round)) / n_est),
        std::sqrt(2.0));
  }
};

/// Outcome flags of the choreographed steps (the `flag` byte of an
/// ACTOR_STEPPED group): the parent keys its unresolved/searching model
/// transitions on them.
inline constexpr std::uint8_t kConntStepSearching = 0;   ///< probe sent
inline constexpr std::uint8_t kConntStepConnected = 1;   ///< connect sent
inline constexpr std::uint8_t kConntStepUnresolved = 0;  ///< no reply heard
inline constexpr std::uint8_t kConntStepTerminated = 2;  ///< schedule done

template <typename Topo>
class ConntActor {
 public:
  using Msg = proto::ConntMsg;
  using Delivery = sim::Delivery<Msg>;

  ConntActor(const Topo& topo, RankScheme scheme, double n_est,
             const proto::WireContext& ctx)
      : points_(topo.points()),
        scheme_(scheme),
        n_est_(n_est),
        ctx_(ctx),
        nodes_(topo.node_count()) {}

  void on_round_start(std::uint64_t /*round*/) {}

  /// REQUEST → reply if higher-ranked; REPLY → fold into the requester's
  /// best-so-far; CONNECTION → pure notification (the tree edge was already
  /// recorded by the sender's connect step).
  template <typename Env>
  void on_message(const Delivery& d, Env& env) {
    ++invocations_;
    if (std::holds_alternative<proto::ConntRequest>(d.msg)) {
      if (rank_less(scheme_, points_, d.from, d.to)) {
        env.unicast(d.to, d.from, sim::MsgKind::kReply, 0, sim::kNoEventNode,
                    0.0,
                    Msg{proto::ConntReply::from_point(points_[d.to], ctx_)});
      }
      return;
    }
    if (std::holds_alternative<proto::ConntReply>(d.msg)) {
      Node& n = nodes_[d.to];
      if (n.best == graph::kNoNode || d.distance < n.best_distance ||
          (d.distance == n.best_distance && d.from < n.best)) {
        n.best = d.from;
        n.best_distance = d.distance;
      }
      return;
    }
    EMST_ASSERT(std::holds_alternative<proto::ConntConnect>(d.msg));
  }

  /// Doubling-round step 1 for one unresolved node: broadcast a REQUEST at
  /// the round's radius, or terminate if the schedule is exhausted (the
  /// top-ranked node). Returns the group flag.
  template <typename Env>
  std::uint8_t step_probe(graph::NodeId u, std::size_t round, Env& env) {
    ++invocations_;
    Node& n = nodes_[u];
    const ProbePlan plan(scheme_, points_[u], n_est_);
    if (round > plan.max_rounds) {
      n.done = true;
      return kConntStepTerminated;
    }
    env.broadcast(u, ProbePlan::radius(round, n_est_), sim::MsgKind::kRequest,
                  0, sim::kNoEventNode,
                  Msg{proto::ConntRequest::from_point(points_[u], ctx_)});
    n.searching = true;
    return kConntStepSearching;
  }

  /// Doubling-round step 3 for one searching node: CONNECT to the nearest
  /// replier (note = chosen parent + distance bit image, for the parent's
  /// tree bookkeeping) or stay unresolved. Clears the round-scoped
  /// best/searching state either way.
  template <typename Env>
  std::uint8_t step_connect(graph::NodeId u, Env& env) {
    ++invocations_;
    Node& n = nodes_[u];
    EMST_ASSERT(n.searching);
    n.searching = false;
    if (n.best == graph::kNoNode) return kConntStepUnresolved;
    env.unicast(u, n.best, sim::MsgKind::kConnection, 0, sim::kNoEventNode,
                0.0, Msg{proto::ConntConnect{}});
    env.note(n.best, std::bit_cast<std::uint64_t>(n.best_distance));
    n.done = true;
    n.best = graph::kNoNode;
    n.best_distance = 0.0;
    return kConntStepConnected;
  }

  /// Epoch reset: exclude the nodes crashed at the current fault clock and
  /// clear all per-run state (docs/ROBUSTNESS.md fail-stop epochs).
  void reset(const sim::FaultInjector& faults, bool faulty) {
    for (graph::NodeId u = 0; u < static_cast<graph::NodeId>(nodes_.size());
         ++u) {
      Node& n = nodes_[u];
      n.excluded = faulty && faults.crashed(u);
      n.done = false;
      n.searching = false;
      n.best = graph::kNoNode;
      n.best_distance = 0.0;
    }
  }

  /// Is `u` in the probe sweep of the next round? (= the parent's
  /// `unresolved` membership; the rank enumerates its local nodes with
  /// this predicate in ascending order.)
  [[nodiscard]] bool unresolved(graph::NodeId u) const {
    const Node& n = nodes_[u];
    return !n.excluded && !n.done;
  }
  /// Is `u` in the connect sweep of the current round?
  [[nodiscard]] bool searching(graph::NodeId u) const {
    return nodes_[u].searching;
  }

  /// Rank-side execution of one choreographed step (actor_rank.hpp). The
  /// probe and connect sweeps enumerate the rank's local nodes in ascending
  /// id order through the unresolved/searching predicates — the exact
  /// projection of the parent's global sweep lists, which stay ascending by
  /// construction — and emit one ACTOR_STEPPED group per invoked node.
  template <typename LocalPred, typename Env, typename Emit>
  void step(std::uint8_t kind, std::uint64_t param,
            std::span<const graph::NodeId> /*list*/,
            const sim::FaultInjector& faults, bool faulty,
            LocalPred&& is_local, Env& env, Emit&& emit) {
    switch (kind) {
      case proto::kDistStepConntProbe:
        for (graph::NodeId u = 0; u < node_count(); ++u) {
          if (!is_local(u) || !unresolved(u)) continue;
          env.begin_entry();
          const std::uint8_t flag =
              step_probe(u, static_cast<std::size_t>(param), env);
          emit(u, flag);
        }
        break;
      case proto::kDistStepConntConnect:
        for (graph::NodeId u = 0; u < node_count(); ++u) {
          if (!is_local(u) || !searching(u)) continue;
          env.begin_entry();
          emit(u, step_connect(u, env));
        }
        break;
      case proto::kDistStepConntReset:
        reset(faults, faulty);
        break;
      default:
        EMST_ASSERT_MSG(false, "Co-NNT actor: unknown step kind");
    }
  }

  [[nodiscard]] graph::NodeId node_count() const {
    return static_cast<graph::NodeId>(nodes_.size());
  }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

  /// Harvest codec: the parent's tree bookkeeping already happened through
  /// notes, so only the termination bits ship home.
  void encode_node(graph::NodeId u, proto::BitWriter& w) const {
    const Node& n = nodes_[u];
    w.write(n.excluded ? 1 : 0, 1);
    w.write(n.done ? 1 : 0, 1);
    w.write(n.searching ? 1 : 0, 1);
  }
  void decode_node(graph::NodeId u, proto::BitReader& r) {
    Node& n = nodes_[u];
    n.excluded = r.read(1) != 0;
    n.done = r.read(1) != 0;
    n.searching = r.read(1) != 0;
  }

 private:
  struct Node {
    bool excluded = false;
    bool done = false;
    bool searching = false;
    graph::NodeId best = graph::kNoNode;
    double best_distance = 0.0;
  };

  std::span<const geometry::Point2> points_;
  RankScheme scheme_;
  double n_est_;
  proto::WireContext ctx_;
  std::vector<Node> nodes_;
  std::uint64_t invocations_ = 0;
};

}  // namespace emst::nnt
