// Shared command-line surface for the `emst::RunConfig` knobs.
//
// `emst_cli` and `emst_serve` accept the same run-configuration flags
// (--loss/--arq/--chaos/--oracle/--per-node/--breakdown/--threads/--trace
// and friends) with the same spellings, defaults, and error messages; this
// is the one parser both share, so the two frontends cannot drift. Usage:
//
//   auto spec = my_frontend_flags();
//   emst::merge_run_flag_spec(spec);               // splice in the knobs
//   const support::Cli cli(argc, argv, spec);      // unknown flags abort
//   emst::RunFlags flags = emst::parse_run_flags(cli);
//   emst::RunConfig cfg;
//   cfg.driver = ...;
//   flags.apply(cfg);                              // knobs -> facade config
//
// `RunFlags` OWNS the chaos controller and the invariant oracle the parsed
// configuration points at, so it must outlive every run it is applied to
// (and is move-only for that reason).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "emst/run.hpp"
#include "emst/sim/chaos.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/support/cli.hpp"

namespace emst {

/// The shared run-configuration knobs parsed off a command line.
struct RunFlags {
  sim::FaultModel faults;  ///< loss/seed set; `controller` wired if --chaos
  sim::ArqOptions arq;
  bool per_node = false;
  bool breakdown = false;
  bool oracle_enabled = false;
  std::size_t threads = 0;
  std::size_t ranks = 0;  ///< >0 = distributed engine with forked ranks
  std::string trace_path;  ///< empty = no telemetry trace requested

  /// Owned by the flags object (moved, never copied).
  std::unique_ptr<sim::BudgetedController> chaos_controller;
  std::unique_ptr<sim::InvariantOracle> oracle;

  RunFlags() = default;
  RunFlags(RunFlags&&) noexcept = default;
  RunFlags& operator=(RunFlags&&) noexcept = default;

  /// Whether the fault surface needs the loss-recovering engines
  /// (Bernoulli/Gilbert loss or ARQ — crash-only chaos works everywhere).
  [[nodiscard]] bool lossy() const {
    return faults.loss > 0.0 || faults.use_gilbert || arq.enabled;
  }

  /// Copy the knobs into a facade config. The config borrows this object's
  /// oracle and chaos controller; keep the flags alive across the run.
  void apply(RunConfig& cfg) const {
    cfg.faults = faults;
    cfg.arq = arq;
    cfg.track_per_node_energy = per_node;
    cfg.record_breakdown = breakdown;
    cfg.threads = threads;
    cfg.ranks = ranks;
    cfg.oracle = oracle.get();
  }
};

/// Add the shared knob flags (with their help strings) to a frontend's
/// `support::Cli` spec. Aborts the process if a frontend-specific flag
/// collides with a shared spelling — the whole point is one surface.
void merge_run_flag_spec(std::map<std::string, std::string>& spec);

/// Parse the shared knobs off an already-constructed Cli (whose spec must
/// include `merge_run_flag_spec`). Exits with status 2 on invalid values
/// (unknown chaos strategy), matching the frontends' other flag errors.
[[nodiscard]] RunFlags parse_run_flags(const support::Cli& cli);

/// Exit with status 2 if the flags require loss recovery but `driver`
/// cannot provide it (the shared "--loss/--arq apply to ..." message).
void reject_unsupported_faults(const RunFlags& flags, Driver driver);

}  // namespace emst
