// Classical Gallager–Humblet–Spira distributed MST (TOPLAS 1983) — the
// paper's baseline (§III, §VII "GHS").
//
// Faithful reconstruction of the seven-message-type algorithm: CONNECT,
// INITIATE, TEST, ACCEPT, REJECT, REPORT, CHANGE-ROOT, with fragment levels,
// deferred message processing, merge/absorb semantics, and per-edge states
// Basic / Branch / Rejected. It runs over the synchronous round network
// (messages sent in round t arrive in round t+1; per-receiver processing is
// serial), which realizes a legal asynchronous execution, so the original
// correctness proof applies verbatim.
//
// Message complexity is the classical O(|E| + n log n); at the connectivity
// radius r = Θ(√(log n / n)) every message costs up to r² = Θ(log n / n),
// which is what produces the Θ(log² n) average energy the paper measures
// (Fig 3, slope ≈ 2 in log W vs log log n).
#pragma once

#include <vector>

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/run_config.hpp"
#include "emst/support/deprecated.hpp"

namespace emst::ghs {

/// How a node discovers its minimum outgoing edge.
enum class MoeStrategy {
  /// Original 1983 protocol: TEST basic edges in ascending weight until the
  /// first ACCEPT; REJECTed (intra-fragment) edges are never retried.
  kTestAll,
  /// The paper's §V-A modification, made asynchrony-safe: every node caches
  /// (neighbor → fragment name) from local-broadcast announcements sent when
  /// a node's fragment name changes. A cache hit with the node's own name
  /// proves the edge internal (fragments never split), so it is rejected
  /// with ZERO messages; the cheapest cache-miss candidate is still
  /// confirmed with one TEST (the cache may be stale the other way), which
  /// keeps the original level-based correctness argument intact.
  kCachedConfirm,
};

/// Options embed the shared `sim::RunConfig` knobs. Classic GHS supports
/// pathloss / per-node / breakdown / telemetry; the fault and ARQ knobs must
/// stay disabled (the 1983 protocol has no loss recovery — asserted).
struct ClassicGhsOptions : sim::RunConfig {
  /// Operating transmission radius; edges longer than this are invisible.
  /// Must be ≤ the topology's max radius. <= 0 means "use max radius".
  double radius = 0.0;
  MoeStrategy moe = MoeStrategy::kTestAll;
  /// Message-delay model. The default is the paper's synchronous network;
  /// nonzero max_extra_delay exercises GHS's native asynchronous setting
  /// (per-edge FIFO preserved), under which the output MUST be unchanged.
  sim::DelayModel delays{};
  /// Nodes that wake spontaneously in round 0. Empty = everyone (the
  /// experiments' setting). Any other node wakes when its first message
  /// arrives — the lower bound's assumption (2) in §IV. Components with no
  /// spontaneous starter never participate.
  std::vector<NodeId> spontaneous_wakeups{};
  /// Run over `sim::ReferenceNetwork` instead of the calendar-queue engine.
  /// Both engines honor the same delivery contract, so results must be
  /// byte-identical — including the telemetry event stream (tested).
  bool use_reference_engine = false;
  /// Safety cap on simulated rounds (defends against a driver bug turning
  /// into an infinite loop; generous — GHS needs O(n log n) rounds at most).
  std::size_t max_rounds = 0;  ///< 0 = automatic (50·n + 1000)
};

/// Run classical GHS on `topo`. On a disconnected visibility graph, each
/// component (with a spontaneous starter) computes its own MST; with the
/// default wake-everyone setting the result is the minimum spanning forest.
///
/// Templated over the topology backend (`sim::Topology` or
/// `sim::ImplicitTopology`; defined in classic.cpp, explicitly instantiated
/// for both). The protocol names fragments by canonical edge index, so the
/// implicit backend materialises its edge-rank table on first use
/// (`prepare_edge_indices`) — classic GHS keeps its Θ(m) identity on either
/// backend; the memory-lean path is the modified/EOPT family.
template <typename Topo>
EMST_DEPRECATED("use the emst::run facade (emst/run.hpp)")
[[nodiscard]] MstRunResult run_classic_ghs(const Topo& topo,
                                           const ClassicGhsOptions& options = {});

}  // namespace emst::ghs
