#include "emst/ghs/common.hpp"

#include <algorithm>
#include <unordered_set>

#include "emst/support/assert.hpp"

namespace emst::ghs {

std::span<const graph::Neighbor> neighbors_within(const sim::Topology& topo,
                                                  NodeId u, double radius) {
  const auto all = topo.neighbors(u);
  // Neighbors are sorted by weight; find the first strictly beyond radius.
  const auto end = std::upper_bound(
      all.begin(), all.end(), radius,
      [](double r, const graph::Neighbor& nb) { return r < nb.w; });
  return all.first(static_cast<std::size_t>(end - all.begin()));
}

std::size_t distinct_pairs_used(const sim::Topology& topo, const TxLog& log) {
  std::unordered_set<std::uint64_t> pairs;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (const TxBatch& batch : log) {
    for (const TxRecord& record : batch) {
      if (record.is_broadcast) {
        for (const graph::Neighbor& nb :
             neighbors_within(topo, record.from, record.power_radius)) {
          pairs.insert(key(record.from, nb.id));
        }
      } else {
        pairs.insert(key(record.from, record.to));
      }
    }
  }
  return pairs.size();
}

std::size_t neighbor_slot(const sim::Topology& topo, NodeId u, NodeId v) {
  const auto all = topo.neighbors(u);
  const double w = topo.distance(u, v);
  // Find the first neighbor with weight >= w, then scan the (tiny) run of
  // equal weights for the id.
  auto it = std::lower_bound(
      all.begin(), all.end(), w,
      [](const graph::Neighbor& nb, double r) { return nb.w < r; });
  while (it != all.end() && it->id != v) ++it;
  EMST_ASSERT_MSG(it != all.end(), "neighbor_slot: (u,v) is not a topology edge");
  return static_cast<std::size_t>(it - all.begin());
}

}  // namespace emst::ghs
