#include "emst/ghs/common.hpp"

// The neighbor helpers moved into the header as templates over the topology
// backend (materialized vs implicit); this TU remains so the build target's
// source list stays stable.
