// Classic GHS as a node actor (docs/DISTRIBUTED.md §6).
//
// The 1983 protocol's per-node handler logic — the seven message procedures,
// spontaneous wakeup and the fail-stop reset — extracted out of the driver
// into a NodeActor so the same handler code runs in two placements:
//
//  - serially, inside the driver process, against an env that tallies and
//    stages each send immediately (all in-process engines, and the
//    distributed engine's routing mode), byte-identical to the pre-actor
//    inline driver;
//  - rank-resident, inside the forked rank that owns the receiving node,
//    against a `sim::RankActorEnv` that records each send as an effect
//    ledger record for the parent to replay.
//
// Every handler reads and writes ONLY the state of the receiving node (plus
// the read-only topology); that receiver-locality is the entire correctness
// argument for rank residency, so keep it when editing: a handler that
// peeks at another node's state would silently diverge across placements.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "emst/ghs/classic.hpp"
#include "emst/ghs/common.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/proto/wire.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/network.hpp"
#include "emst/support/assert.hpp"

namespace emst::ghs {

template <typename Topo>
class ClassicGhsActor {
 public:
  using Msg = proto::GhsMsg;
  using Delivery = sim::Delivery<Msg>;
  using NodeState = proto::GhsNodeState;
  enum class EdgeState : std::uint8_t { kBasic, kBranch, kRejected };

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr EdgeIndex kNoFragName = static_cast<EdgeIndex>(-1);

  /// Per-node protocol state. Edges are addressed by "slot": the position
  /// in the node's radius-filtered neighbor span (ascending weight), which
  /// makes "minimum-weight basic edge" a linear scan from slot 0.
  struct NodeCtx {
    NodeState state = NodeState::kSleeping;
    std::uint32_t level = 0;
    EdgeIndex frag = kNoFragName;       // undefined until first Initiate
    std::vector<EdgeState> edge_state;  // per neighbor slot
    std::size_t best_slot = kNoSlot;    // candidate MOE (local slot)
    std::uint64_t best_edge = kInfEdge; // its global edge index
    std::size_t test_slot = kNoSlot;    // slot currently under TEST
    std::size_t in_branch = kNoSlot;    // slot toward the core
    std::uint32_t find_count = 0;
    bool halted = false;
    /// kCachedConfirm: last fragment name each neighbor announced. Names
    /// are globally unique over time (a core edge can core only once), so a
    /// cache hit equal to the node's own name proves the edge internal
    /// forever.
    std::unordered_map<NodeId, EdgeIndex> cache;
  };

  ClassicGhsActor(const Topo& topo, double radius, MoeStrategy moe)
      : topo_(&topo), radius_(radius), moe_(moe), nodes_(topo.node_count()) {
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      nodes_[u].edge_state.assign(neighbors(u).size(), EdgeState::kBasic);
    }
  }

  /// Per-round hook of the NodeActor shape. Classic GHS keeps no per-round
  /// bookkeeping; invoked once per round on every replica either way.
  void on_round_start(std::uint64_t /*round*/) {}

  /// Dispatch one delivery to its receiver's handler (paper procedure
  /// numbering in the comments below). The env decides the placement.
  template <typename Env>
  void on_message(const Delivery& d, Env& env) {
    ++invocations_;
    const NodeId u = d.to;
    const std::size_t j = slot_of(u, d.from);
    // A sleeping node is awakened by any incoming message (all nodes wake in
    // round 0 here, but keep the guard for partial-start configurations).
    if (nodes_[u].state == NodeState::kSleeping) wakeup_locked(u, env);
    std::visit(
        [&](const auto& msg) {
          using T = std::decay_t<decltype(msg)>;
          if constexpr (std::is_same_v<T, proto::GhsConnect>) {
            on_connect(u, j, msg, d, env);
          } else if constexpr (std::is_same_v<T, proto::GhsInitiate>) {
            on_initiate(u, j, msg, env);
          } else if constexpr (std::is_same_v<T, proto::GhsTest>) {
            on_test(u, j, msg, d, env);
          } else if constexpr (std::is_same_v<T, proto::GhsAccept>) {
            on_accept(u, j, env);
          } else if constexpr (std::is_same_v<T, proto::GhsReject>) {
            on_reject(u, j, env);
          } else if constexpr (std::is_same_v<T, proto::GhsReport>) {
            on_report(u, j, msg, d, env);
          } else if constexpr (std::is_same_v<T, proto::GhsAnnounce>) {
            nodes_[u].cache[d.from] = msg.frag;
          } else {
            change_root(u, env);
          }
        },
        d.msg);
  }

  /// (2) Spontaneous wakeup: mark the minimum-weight edge Branch and send
  /// CONNECT(0) over it. Isolated nodes halt immediately. After a fail-stop
  /// restart, edges to dead neighbors are pre-Rejected, so the minimum edge
  /// is the cheapest surviving one (slot 0 in the fault-free run).
  template <typename Env>
  void wakeup(NodeId u, Env& env) {
    ++invocations_;
    wakeup_locked(u, env);
  }

  /// Fail-stop reset (docs/ROBUSTNESS.md): discard all protocol state and
  /// pre-Reject edges to permanently dead neighbors — the modeled
  /// neighbor-timeout failure detector. The wakeups that start the next
  /// epoch are the driver's (a choreographed step, not a handler).
  void restart(const sim::FaultInjector& faults) {
    for (NodeId u = 0; u < node_count(); ++u) {
      NodeCtx& n = nodes_[u];
      const auto nbs = neighbors(u);
      n = NodeCtx{};
      n.edge_state.assign(nbs.size(), EdgeState::kBasic);
      for (std::size_t i = 0; i < nbs.size(); ++i) {
        if (faults.crashed_forever(nbs[i].id))
          n.edge_state[i] = EdgeState::kRejected;
      }
    }
  }

  /// Rank-side execution of one choreographed step (actor_rank.hpp). The
  /// parent ships the step kind; each rank invokes its local share in the
  /// same order the parent's expected-order walk assumes — ascending node id
  /// for the whole-network wakeup, the wire list's own order for partial
  /// starts — and emits one ACTOR_STEPPED group per invocation. Crash skips
  /// use the rank's mirrored fault clock; the parent asserts the resulting
  /// group sequence matches its own (authoritative) computation node for
  /// node.
  template <typename LocalPred, typename Env, typename Emit>
  void step(std::uint8_t kind, std::uint64_t /*param*/,
            std::span<const NodeId> list, const sim::FaultInjector& faults,
            bool faulty, LocalPred&& is_local, Env& env, Emit&& emit) {
    switch (kind) {
      case proto::kDistStepWakeupAll:
        for (NodeId u = 0; u < node_count(); ++u) {
          if (!is_local(u)) continue;
          if (faulty && faults.crashed(u)) continue;
          env.begin_entry();
          wakeup(u, env);
          emit(u, std::uint8_t{0});
        }
        break;
      case proto::kDistStepWakeupList:
        for (const NodeId u : list) {
          if (!is_local(u)) continue;
          if (faulty && faults.crashed(u)) continue;
          env.begin_entry();
          wakeup(u, env);
          emit(u, std::uint8_t{0});
        }
        break;
      case proto::kDistStepRestart:
        restart(faults);
        break;
      default:
        EMST_ASSERT_MSG(false, "classic GHS actor: unknown step kind");
    }
  }

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(nodes_.size());
  }
  [[nodiscard]] const NodeCtx& node(NodeId u) const { return nodes_[u]; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

  /// Node-state codec for the harvest collective. The announcement cache is
  /// deliberately not shipped: it is a pure message-saving optimization that
  /// only influences *future* sends, and harvest runs strictly after
  /// quiescence — nothing downstream reads it.
  void encode_node(NodeId u, proto::BitWriter& w) const {
    const NodeCtx& n = nodes_[u];
    w.write(static_cast<std::uint64_t>(n.state), 2);
    w.write(n.level, 32);
    w.write(static_cast<std::uint32_t>(n.frag), 32);
    for (const EdgeState e : n.edge_state)
      w.write(static_cast<std::uint64_t>(e), 2);
    w.write(slot_image(n.best_slot), 32);
    w.write(n.best_edge, 64);
    w.write(slot_image(n.test_slot), 32);
    w.write(slot_image(n.in_branch), 32);
    w.write(n.find_count, 32);
    w.write(n.halted ? 1 : 0, 1);
  }

  void decode_node(NodeId u, proto::BitReader& r) {
    NodeCtx& n = nodes_[u];
    n.state = static_cast<NodeState>(r.read(2));
    n.level = static_cast<std::uint32_t>(r.read(32));
    n.frag = static_cast<EdgeIndex>(r.read(32));
    for (EdgeState& e : n.edge_state) e = static_cast<EdgeState>(r.read(2));
    n.best_slot = slot_value(static_cast<std::uint32_t>(r.read(32)));
    n.best_edge = r.read(64);
    n.test_slot = slot_value(static_cast<std::uint32_t>(r.read(32)));
    n.in_branch = slot_value(static_cast<std::uint32_t>(r.read(32)));
    n.find_count = static_cast<std::uint32_t>(r.read(32));
    n.halted = r.read(1) != 0;
  }

 private:
  [[nodiscard]] static std::uint32_t slot_image(std::size_t slot) {
    return slot == kNoSlot ? 0xFFFFFFFFu : static_cast<std::uint32_t>(slot);
  }
  [[nodiscard]] static std::size_t slot_value(std::uint32_t image) {
    return image == 0xFFFFFFFFu ? kNoSlot : static_cast<std::size_t>(image);
  }

  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const {
    return neighbors_within(*topo_, u, radius_);
  }
  [[nodiscard]] std::size_t slot_of(NodeId u, NodeId v) const {
    return neighbor_slot(*topo_, u, v);
  }

  /// Unicast `msg` over slot `slot` of `u`: the single chokepoint where a
  /// handler action becomes an env effect (type tally reach = the slot
  /// weight; telemetry context = wire kind + sender's current fragment).
  template <typename Env>
  void send(NodeId u, std::size_t slot, Msg msg, Env& env) {
    const GhsMsgType type = proto::type_of(msg);
    const graph::Neighbor& nb = neighbors(u)[slot];
    env.unicast(u, nb.id, to_msg_kind(type), static_cast<std::uint8_t>(type),
                static_cast<std::uint32_t>(nodes_[u].frag), nb.w,
                std::move(msg));
  }

  template <typename Env>
  void wakeup_locked(NodeId u, Env& env) {
    NodeCtx& n = nodes_[u];
    if (n.state != NodeState::kSleeping) return;
    n.state = NodeState::kFound;
    n.level = 0;
    n.find_count = 0;
    std::size_t first = kNoSlot;
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (n.edge_state[i] == EdgeState::kBasic) {
        first = i;
        break;
      }
    }
    if (first == kNoSlot) {
      n.halted = true;  // isolated node (or all neighbors dead)
      return;
    }
    n.edge_state[first] = EdgeState::kBranch;
    send(u, first, proto::GhsConnect{0}, env);
  }

  /// (3) Receiving CONNECT(L) on edge j.
  template <typename Env>
  void on_connect(NodeId u, std::size_t j, const proto::GhsConnect& m,
                  const Delivery& d, Env& env) {
    NodeCtx& n = nodes_[u];
    if (m.level < n.level) {
      // Absorb the lower-level fragment.
      n.edge_state[j] = EdgeState::kBranch;
      send(u, j, proto::GhsInitiate{n.level, n.frag, n.state}, env);
      if (n.state == NodeState::kFind) ++n.find_count;
    } else if (n.edge_state[j] == EdgeState::kBasic) {
      env.defer(d);  // equal level but j not yet known to be the mutual MOE
    } else {
      // Merge: j is the core of the new fragment, named by its edge index.
      const EdgeIndex core = neighbors(u)[j].edge_index;
      send(u, j, proto::GhsInitiate{n.level + 1, core, NodeState::kFind}, env);
    }
  }

  /// (4) Receiving INITIATE(L, F, S) on edge j.
  template <typename Env>
  void on_initiate(NodeId u, std::size_t j, const proto::GhsInitiate& m,
                   Env& env) {
    NodeCtx& n = nodes_[u];
    n.level = m.level;
    const bool renamed = n.frag != m.frag;
    n.frag = m.frag;
    // §V-A modification: a node whose fragment name changed announces it to
    // its whole neighbourhood with one local broadcast.
    if (moe_ == MoeStrategy::kCachedConfirm && renamed) {
      env.broadcast(u, radius_, sim::MsgKind::kAnnounce,
                    static_cast<std::uint8_t>(GhsMsgType::kAnnounce),
                    static_cast<std::uint32_t>(m.frag),
                    Msg{proto::GhsAnnounce{m.frag}});
    }
    n.state = m.state;
    n.in_branch = j;
    n.best_slot = kNoSlot;
    n.best_edge = kInfEdge;
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (i == j || n.edge_state[i] != EdgeState::kBranch) continue;
      send(u, i, proto::GhsInitiate{m.level, m.frag, m.state}, env);
      if (m.state == NodeState::kFind) ++n.find_count;
    }
    if (m.state == NodeState::kFind) test(u, env);
  }

  /// (5) Procedure test: probe the minimum-weight basic edge. In cached
  /// mode, edges whose neighbour announced the node's own fragment name are
  /// rejected for free; the first remaining candidate is still confirmed
  /// with one TEST (the cache can be stale in the other direction only).
  template <typename Env>
  void test(NodeId u, Env& env) {
    NodeCtx& n = nodes_[u];
    const auto nbs = neighbors(u);
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (n.edge_state[i] != EdgeState::kBasic) continue;
      if (moe_ == MoeStrategy::kCachedConfirm) {
        const auto hit = n.cache.find(nbs[i].id);
        if (hit != n.cache.end() && hit->second == n.frag) {
          n.edge_state[i] = EdgeState::kRejected;  // proven internal, free
          continue;
        }
      }
      n.test_slot = i;
      send(u, i, proto::GhsTest{n.level, n.frag}, env);
      return;
    }
    n.test_slot = kNoSlot;
    report(u, env);
  }

  /// (6) Receiving TEST(L, F) on edge j.
  template <typename Env>
  void on_test(NodeId u, std::size_t j, const proto::GhsTest& m,
               const Delivery& d, Env& env) {
    NodeCtx& n = nodes_[u];
    if (m.level > n.level) {
      env.defer(d);
      return;
    }
    if (m.frag != n.frag) {
      send(u, j, proto::GhsAccept{}, env);
      return;
    }
    // Same fragment: internal edge.
    if (n.edge_state[j] == EdgeState::kBasic)
      n.edge_state[j] = EdgeState::kRejected;
    if (n.test_slot != j) {
      send(u, j, proto::GhsReject{}, env);
    } else {
      test(u, env);  // the edge we were testing is internal; try the next
    }
  }

  /// (7) Receiving ACCEPT on edge j.
  template <typename Env>
  void on_accept(NodeId u, std::size_t j, Env& env) {
    NodeCtx& n = nodes_[u];
    n.test_slot = kNoSlot;
    const std::uint64_t idx = neighbors(u)[j].edge_index;
    if (idx < n.best_edge) {
      n.best_edge = idx;
      n.best_slot = j;
    }
    report(u, env);
  }

  /// (8) Receiving REJECT on edge j.
  template <typename Env>
  void on_reject(NodeId u, std::size_t j, Env& env) {
    NodeCtx& n = nodes_[u];
    if (n.edge_state[j] == EdgeState::kBasic)
      n.edge_state[j] = EdgeState::kRejected;
    test(u, env);
  }

  /// (9) Procedure report.
  template <typename Env>
  void report(NodeId u, Env& env) {
    NodeCtx& n = nodes_[u];
    if (n.find_count == 0 && n.test_slot == kNoSlot) {
      n.state = NodeState::kFound;
      EMST_ASSERT(n.in_branch != kNoSlot);
      send(u, n.in_branch, proto::GhsReport{n.best_edge}, env);
    }
  }

  /// (10) Receiving REPORT(w) on edge j.
  template <typename Env>
  void on_report(NodeId u, std::size_t j, const proto::GhsReport& m,
                 const Delivery& d, Env& env) {
    NodeCtx& n = nodes_[u];
    if (j != n.in_branch) {
      EMST_ASSERT(n.find_count > 0);
      --n.find_count;
      if (m.best < n.best_edge) {
        n.best_edge = m.best;
        n.best_slot = j;
      }
      report(u, env);
      return;
    }
    // Report arriving over the core edge.
    if (n.state == NodeState::kFind) {
      env.defer(d);
    } else if (m.best > n.best_edge) {
      change_root(u, env);
    } else if (m.best == kInfEdge && n.best_edge == kInfEdge) {
      n.halted = true;  // the whole fragment has no outgoing edge: done
    }
    // else: the other core node owns the fragment MOE and will change root.
  }

  /// (11) Procedure change-root.
  template <typename Env>
  void change_root(NodeId u, Env& env) {
    NodeCtx& n = nodes_[u];
    EMST_ASSERT(n.best_slot != kNoSlot);
    if (n.edge_state[n.best_slot] == EdgeState::kBranch) {
      send(u, n.best_slot, proto::GhsChangeRoot{}, env);
    } else {
      send(u, n.best_slot, proto::GhsConnect{n.level}, env);
      n.edge_state[n.best_slot] = EdgeState::kBranch;
    }
  }

  const Topo* topo_;
  double radius_;
  MoeStrategy moe_;
  std::vector<NodeCtx> nodes_;
  std::uint64_t invocations_ = 0;
};

}  // namespace emst::ghs
