// Shared definitions for the distributed MST algorithms.
//
// All algorithms identify edges by their index in the topology's canonical
// edge list (sorted by (weight, endpoints)); comparing indices is exactly the
// canonical total order on weights, so fragment names, MOE comparisons and
// report aggregation are integer operations with no floating-point equality
// hazards — and the resulting MST is unique, enabling edge-for-edge
// comparison with Kruskal.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_set>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/proto/ghs_wire.hpp"
#include "emst/run_report.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/topology.hpp"
#include "emst/support/assert.hpp"

namespace emst::ghs {

using NodeId = sim::NodeId;
// The edge-index vocabulary and wire message types moved to the proto layer
// (emst/proto/ghs_wire.hpp) so engines and drivers can share one codec;
// aliases keep every existing ghs:: spelling working.
using EdgeIndex = proto::EdgeIndex;
inline constexpr std::uint64_t kInfEdge = proto::kInfEdge;

/// One logical transmission recorded by an engine for interference replay
/// (mac::replay_log): unicast (to, distance-as-radius) or local broadcast.
struct TxRecord {
  NodeId from = 0;
  NodeId to = 0;           ///< receiver (unicast) — ignored for broadcasts
  double power_radius = 0.0;
  bool is_broadcast = false;
};

/// A batch of transmissions the protocol issues concurrently; batches are
/// ordered in time. Batching is coarse (one batch per protocol wave), which
/// over-states contention — the replay is an upper bound on slots/attempts.
using TxBatch = std::vector<TxRecord>;
using TxLog = std::vector<TxBatch>;

/// Message types of the classical GHS protocol (plus the §V-A announcement),
/// for per-type accounting — defined in the proto layer next to their wire
/// codecs.
using GhsMsgType = proto::GhsMsgType;
using proto::ghs_msg_type_name;
using proto::to_msg_kind;

/// Per-type message and energy tallies (classic GHS fills this in; the
/// interesting split is TEST/ACCEPT/REJECT = Θ(|E|) discovery traffic vs
/// the Θ(n log n) INITIATE/REPORT control traffic).
struct GhsMessageBreakdown {
  std::array<std::uint64_t, static_cast<std::size_t>(GhsMsgType::kTypeCount)>
      count{};
  std::array<double, static_cast<std::size_t>(GhsMsgType::kTypeCount)> energy{};

  [[nodiscard]] std::uint64_t count_of(GhsMsgType type) const {
    return count[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] double energy_of(GhsMsgType type) const {
    return energy[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : count) total += c;
    return total;
  }
};

/// Result of one distributed MST run.
struct MstRunResult {
  std::vector<graph::Edge> tree;   ///< canonical order
  sim::Accounting totals;          ///< energy / messages / rounds
  std::size_t phases = 0;          ///< phases (sync) or max level (classic)
  std::size_t fragments = 0;       ///< final fragment count (1 iff connected)
  GhsMessageBreakdown breakdown;   ///< per message type (classic GHS only)
  /// Per-node transmit-energy ledger (empty unless the run options enabled
  /// tracking). max element = the network-lifetime bound.
  std::vector<double> per_node_energy;
  /// Per-phase × per-kind matrix (valid iff `record_breakdown` was set).
  sim::EnergyBreakdown energy_breakdown;
  bool breakdown_recorded = false;
  /// The telemetry hub the run was configured with (null if none).
  sim::Telemetry* telemetry = nullptr;
  /// Fault-layer drop counters (all zero for fault-free runs).
  sim::FaultStats fault_stats{};
  /// Protocol epochs executed. Fail-stop drivers (classic GHS) restart from
  /// scratch among survivors when a crash invalidates the running epoch
  /// (docs/ROBUSTNESS.md); 1 = the run finished without a restart.
  std::size_t epochs = 1;
  /// Crash windows a chaos controller injected during the run, in injection
  /// order — replaying them as a static `FaultModel::crashes` schedule
  /// reproduces the adversarial run.
  std::vector<sim::CrashWindow> injected_crashes;
  /// Execution-placement witnesses (docs/DISTRIBUTED.md §6): handler
  /// invocations performed by THIS process's actor vs the sum shipped home
  /// by the rank processes. Serial runs have invocations here and zero in
  /// the ranks; rank-resident runs the exact inverse — asserted in the
  /// distributed determinism suite.
  std::uint64_t handler_invocations = 0;
  std::uint64_t rank_handler_invocations = 0;

  /// The algorithm-independent view (docs/API_TOUR.md). Non-owning: keep
  /// this result alive while using the report.
  [[nodiscard]] RunReport report() const {
    RunReport out;
    out.tree = &tree;
    out.totals = totals;
    out.phases = phases;
    out.fragments = fragments;
    out.faults = fault_stats;
    if (!per_node_energy.empty()) out.per_node_energy = &per_node_energy;
    if (breakdown_recorded) out.breakdown = &energy_breakdown;
    out.telemetry = telemetry;
    return out;
  }
};

/// Neighbors of u within `radius`, ascending (weight, id) — the paper's
/// adaptive power control. Delegates to the backend: the materialized
/// topology returns the weight-bounded prefix of its sorted neighbor span,
/// the implicit one regenerates the filtered neighbourhood (span into
/// thread-local scratch — same lifetime rules as Topo::neighbors_within).
template <typename Topo>
[[nodiscard]] std::span<const graph::Neighbor> neighbors_within(
    const Topo& topo, NodeId u, double radius) {
  return topo.neighbors_within(u, radius);
}

/// Position of neighbor v in u's sorted neighbor span (binary search by
/// (weight, id)). Aborts if (u,v) is not an edge of the topology.
template <typename Topo>
[[nodiscard]] std::size_t neighbor_slot(const Topo& topo, NodeId u, NodeId v) {
  const auto all = topo.neighbors(u);
  const double w = topo.distance(u, v);
  // Find the first neighbor with weight >= w, then scan the (tiny) run of
  // equal weights for the id.
  auto it = std::lower_bound(
      all.begin(), all.end(), w,
      [](const graph::Neighbor& nb, double r) { return nb.w < r; });
  while (it != all.end() && it->id != v) ++it;
  EMST_ASSERT_MSG(it != all.end(), "neighbor_slot: (u,v) is not a topology edge");
  return static_cast<std::size_t>(it - all.begin());
}

/// Count the DISTINCT undirected communication pairs a transmission log
/// exercises (a broadcast contributes one pair per receiver within its power
/// radius). This is the quantity the Korach–Moran–Zaks argument (§IV) lower-
/// bounds: any spanning-tree / leader-election algorithm must use
/// Ω(n log n) distinct edges, which Lemma 4.1 then converts into Ω(log n)
/// energy.
template <typename Topo>
[[nodiscard]] std::size_t distinct_pairs_used(const Topo& topo,
                                              const TxLog& log) {
  std::unordered_set<std::uint64_t> pairs;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (const TxBatch& batch : log) {
    for (const TxRecord& record : batch) {
      if (record.is_broadcast) {
        for (const graph::Neighbor& nb :
             neighbors_within(topo, record.from, record.power_radius)) {
          pairs.insert(key(record.from, nb.id));
        }
      } else {
        pairs.insert(key(record.from, record.to));
      }
    }
  }
  return pairs.size();
}

}  // namespace emst::ghs
