#include "emst/ghs/sync.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "emst/graph/union_find.hpp"
#include "emst/sim/collectives.hpp"
#include "emst/support/assert.hpp"

namespace emst::ghs {
namespace {

constexpr NodeId kNone = graph::kNoNode;

/// Driver for one phase-synchronous GHS run. The protocol choreography is
/// deterministic, so the driver walks fragment trees itself and charges the
/// meter for every message the distributed execution would send; the only
/// state a node may consult is state the message flow actually delivered to
/// it (its own fragment id, its neighbor cache, probe replies).
class SyncGhsEngine {
 public:
  SyncGhsEngine(const sim::Topology& topo, const SyncGhsOptions& options,
                const std::optional<FragmentForest>& seed)
      : topo_(topo),
        opts_(options),
        radius_(options.radius > 0.0 ? options.radius : topo.max_radius()),
        meter_(options.pathloss) {
    EMST_ASSERT(radius_ <= topo_.max_radius() * (1.0 + 1e-12));
    const std::size_t n = topo_.node_count();
    frag_.resize(n);
    tree_adj_.assign(n, {});
    cache_.assign(n, {});
    in_tree_.assign(topo_.graph().edge_count(), false);
    rejected_.assign(topo_.graph().edge_count(), false);
    if (seed) {
      EMST_ASSERT(seed->leader.size() == n);
      frag_ = seed->leader;
      for (const graph::Edge& e : seed->tree) add_tree_edge(e);
    } else {
      for (NodeId u = 0; u < n; ++u) frag_[u] = u;
    }
    for (NodeId p : opts_.passive_fragments) passive_.insert(p);
    if (opts_.track_per_node_energy) meter_.enable_per_node(n);
    max_phases_ = opts_.max_phases > 0
                      ? opts_.max_phases
                      : static_cast<std::size_t>(
                            4.0 * std::log2(static_cast<double>(n) + 2.0)) +
                            16;
  }

  SyncGhsResult run() {
    if (opts_.neighbor_cache && opts_.announce_initial) announce_all();
    std::size_t phases = 0;
    std::vector<std::size_t> trajectory;
    for (;;) {
      trajectory.push_back(fragment_count());
      if (!run_phase()) break;
      EMST_ASSERT_MSG(++phases <= max_phases_, "sync GHS exceeded phase cap");
    }
    SyncGhsResult result;
    result.run.tree = tree_;
    graph::sort_edges(result.run.tree);
    result.run.totals = meter_.totals();
    result.run.phases = phases;
    result.run.fragments = fragment_count();
    result.final_forest.leader = frag_;
    result.final_forest.tree = result.run.tree;
    result.fragments_per_phase = std::move(trajectory);
    result.run.per_node_energy = meter_.per_node();
    return result;
  }

  [[nodiscard]] std::size_t fragment_count() const {
    const std::unordered_set<NodeId> leaders(frag_.begin(), frag_.end());
    return leaders.size();
  }

  [[nodiscard]] const sim::EnergyMeter& meter() const noexcept { return meter_; }

 private:
  struct Candidate {
    std::uint64_t edge_index = kInfEdge;
    NodeId from = kNone;
    NodeId to = kNone;
  };

  void add_tree_edge(const graph::Edge& e) {
    tree_adj_[e.u].push_back(e.v);
    tree_adj_[e.v].push_back(e.u);
    tree_.push_back(e.canonical());
    // Mark by global edge index so the probe walk can skip tree edges.
    in_tree_[edge_index_of(e.u, e.v)] = true;
  }

  [[nodiscard]] EdgeIndex edge_index_of(NodeId u, NodeId v) const {
    return topo_.neighbors(u)[neighbor_slot(topo_, u, v)].edge_index;
  }

  void charge_unicast(NodeId u, NodeId v) {
    meter_.charge_unicast(u, topo_.distance(u, v));
    if (opts_.transmission_log != nullptr) {
      batch_.push_back({u, v, topo_.distance(u, v), false});
    }
  }

  /// Charge a unicast into a specific wave buffer (for per-wave batching of
  /// the interference log); equals charge_unicast when not logging.
  void charge_wave(TxBatch& wave, NodeId u, NodeId v) {
    meter_.charge_unicast(u, topo_.distance(u, v));
    if (opts_.transmission_log != nullptr) {
      wave.push_back({u, v, topo_.distance(u, v), false});
    }
  }

  /// Close the current concurrency batch (no-op when not logging or empty).
  void flush_batch() {
    if (opts_.transmission_log == nullptr || batch_.empty()) return;
    opts_.transmission_log->push_back(std::move(batch_));
    batch_.clear();
  }

  /// One local broadcast of u's fragment id; every receiver updates its
  /// cached entry for u. With announce_min_power the transmit power shrinks
  /// to the farthest neighbour's distance — identical receiver set, less
  /// energy (neighbours are sorted ascending, so .back() is the farthest).
  void announce(NodeId u) {
    const auto receivers = neighbors_within(topo_, u, radius_);
    const double power = opts_.announce_min_power
                             ? (receivers.empty() ? 0.0 : receivers.back().w)
                             : radius_;
    meter_.charge_broadcast(u, power, receivers.size());
    if (opts_.transmission_log != nullptr) {
      batch_.push_back({u, u, power, true});
    }
    for (const graph::Neighbor& nb : receivers) cache_[nb.id][u] = frag_[u];
  }

  void announce_all() {
    for (NodeId u = 0; u < topo_.node_count(); ++u) announce(u);
    flush_batch();
    meter_.tick_round();
  }

  /// BFS parents/order of one fragment from its leader over tree edges.
  struct FragmentView {
    std::vector<NodeId> order;          // BFS order, order[0] = leader
    std::unordered_map<NodeId, NodeId> parent;
    std::unordered_map<NodeId, std::size_t> depth;
    std::size_t max_depth = 0;
  };

  [[nodiscard]] FragmentView view_fragment(NodeId leader) const {
    FragmentView view;
    view.order.push_back(leader);
    view.parent[leader] = kNone;
    view.depth[leader] = 0;
    std::queue<NodeId> frontier;
    frontier.push(leader);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : tree_adj_[u]) {
        if (view.parent.count(v) > 0) continue;
        view.parent[v] = u;
        view.depth[v] = view.depth[u] + 1;
        view.max_depth = std::max(view.max_depth, view.depth[v]);
        view.order.push_back(v);
        frontier.push(v);
      }
    }
    return view;
  }

  /// Local MOE of node u: cheapest incident edge leaving the fragment, found
  /// by cache lookup (modified) or TEST probing (classic). Probing charges
  /// 2 messages per probe and permanently rejects intra-fragment edges.
  [[nodiscard]] Candidate local_moe(NodeId u, std::size_t& probes,
                                    TxBatch& probe_wave) {
    Candidate best;
    for (const graph::Neighbor& nb : neighbors_within(topo_, u, radius_)) {
      if (opts_.neighbor_cache) {
        const auto it = cache_[u].find(nb.id);
        EMST_ASSERT_MSG(it != cache_[u].end(),
                        "modified GHS: neighbor cache must be complete");
        if (it->second == frag_[u]) continue;
        best = {nb.edge_index, u, nb.id};
        break;  // neighbors ascend by weight: first hit is the minimum
      }
      // Classic probing: skip branch (tree) and rejected edges, TEST the rest.
      if (in_tree_[nb.edge_index] || rejected_[nb.edge_index]) continue;
      charge_wave(probe_wave, u, nb.id);  // TEST
      charge_wave(probe_wave, nb.id, u);  // ACCEPT or REJECT
      ++probes;
      if (frag_[nb.id] == frag_[u]) {
        rejected_[nb.edge_index] = true;
        continue;
      }
      best = {nb.edge_index, u, nb.id};
      break;
    }
    return best;
  }

  /// Execute one phase. Returns false when no active fragment remains.
  bool run_phase() {
    // Group members by fragment leader.
    std::unordered_map<NodeId, std::vector<NodeId>> members;
    for (NodeId u = 0; u < topo_.node_count(); ++u) members[frag_[u]].push_back(u);

    // Active fragments select their MOEs. When logging, the phase's
    // messages group into four concurrency waves across all fragments.
    std::unordered_map<NodeId, Candidate> selected;
    TxBatch initiate_wave;
    TxBatch probe_wave;
    TxBatch report_wave;
    TxBatch changeroot_wave;
    std::size_t max_depth = 0;
    std::size_t max_probes = 0;
    for (const auto& [leader, nodes] : members) {
      if (passive_.count(leader) > 0 || finished_.count(leader) > 0) continue;
      const FragmentView view = view_fragment(leader);
      EMST_ASSERT_MSG(view.order.size() == nodes.size(),
                      "fragment tree must span exactly the fragment members");
      max_depth = std::max(max_depth, view.max_depth);

      // INITIATE flood: one unicast per tree edge, leader to leaves.
      for (NodeId v : view.order) {
        if (view.parent.at(v) != kNone)
          charge_wave(initiate_wave, view.parent.at(v), v);
      }
      // Local MOEs + REPORT convergecast (one unicast per tree edge).
      Candidate best;
      std::size_t probes = 0;
      for (NodeId v : view.order) {
        const Candidate c = local_moe(v, probes, probe_wave);
        if (c.edge_index < best.edge_index) best = c;
        if (view.parent.at(v) != kNone)
          charge_wave(report_wave, v, view.parent.at(v));
      }
      max_probes = std::max(max_probes, probes);
      if (best.edge_index == kInfEdge) {
        finished_.insert(leader);  // fragment spans its whole component
        continue;
      }
      // CHANGE-ROOT down the tree path leader→owner, then CONNECT over MOE.
      NodeId hop = best.from;
      std::vector<NodeId> path;
      while (hop != kNone) {
        path.push_back(hop);
        hop = view.parent.at(hop);
      }
      for (std::size_t i = path.size(); i-- > 1;)
        charge_wave(changeroot_wave, path[i], path[i - 1]);
      charge_wave(changeroot_wave, best.from, best.to);  // CONNECT
      selected[leader] = best;
    }
    if (opts_.transmission_log != nullptr) {
      for (TxBatch* wave :
           {&initiate_wave, &probe_wave, &report_wave, &changeroot_wave}) {
        if (!wave->empty()) opts_.transmission_log->push_back(std::move(*wave));
      }
    }
    // Synchronous-time estimate for this phase: initiate flood + report
    // convergecast (depth each), the probe sequence, change-root + connect.
    meter_.tick_rounds(2 * max_depth + 2 * max_probes + 2);

    if (selected.empty()) return false;

    merge(selected);
    return true;
  }

  /// Borůvka contraction of the selected MOEs, with the paper's passive-id
  /// retention, followed by the modified-GHS announcements.
  void merge(const std::unordered_map<NodeId, Candidate>& selected) {
    // Union fragments over chosen edges (union-find over node ids; every
    // node of both fragments is already united through tree edges... use a
    // dedicated DSU over fragment leaders via their node ids).
    graph::UnionFind dsu(topo_.node_count());
    // First unite members with their leader so leader sets represent groups.
    for (NodeId u = 0; u < topo_.node_count(); ++u) dsu.unite(u, frag_[u]);
    for (const auto& [leader, c] : selected) dsu.unite(c.from, c.to);

    // Collect groups: representative -> fragment leaders inside.
    std::unordered_map<NodeId, std::vector<NodeId>> group_leaders;
    {
      std::unordered_set<NodeId> leaders(frag_.begin(), frag_.end());
      for (NodeId l : leaders) group_leaders[dsu.find(l)].push_back(l);
    }

    // Decide each group's new leader.
    std::unordered_map<NodeId, NodeId> new_leader_of_rep;
    for (auto& [rep, leaders] : group_leaders) {
      if (leaders.size() == 1) {
        new_leader_of_rep[rep] = leaders[0];
        continue;
      }
      NodeId chosen = kNone;
      for (NodeId l : leaders) {
        if (passive_.count(l) > 0) {
          EMST_ASSERT_MSG(chosen == kNone, "at most one passive fragment per group");
          chosen = l;
        }
      }
      const bool has_passive = chosen != kNone;
      if (!has_passive || !opts_.retain_passive_id) {
        // Core edge = minimum selected edge inside the group (it is the
        // mutual MOE); the new leader is its higher-id endpoint.
        Candidate core;
        for (NodeId l : leaders) {
          const auto it = selected.find(l);
          if (it != selected.end() && it->second.edge_index < core.edge_index)
            core = it->second;
        }
        EMST_ASSERT(core.edge_index != kInfEdge);
        chosen = std::max(core.from, core.to);
      }
      new_leader_of_rep[rep] = chosen;
      if (has_passive) {
        // Passivity survives the merge (the giant keeps only accepting).
        for (NodeId l : leaders) passive_.erase(l);
        passive_.insert(chosen);
      }
    }

    // Add the chosen MOE edges to the forest (dedupe mutual picks).
    std::unordered_set<std::uint64_t> added;
    for (const auto& [leader, c] : selected) {
      if (!added.insert(c.edge_index).second) continue;
      const graph::Edge e = topo_.graph().edges()[c.edge_index];
      add_tree_edge(e);
    }

    // Relabel nodes; changed nodes announce their new fragment id.
    std::vector<NodeId> changed;
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      const NodeId nl = new_leader_of_rep.at(dsu.find(frag_[u]));
      if (nl != frag_[u]) {
        frag_[u] = nl;
        changed.push_back(u);
      }
    }
    if (opts_.neighbor_cache) {
      for (NodeId u : changed) announce(u);
      flush_batch();
      if (!changed.empty()) meter_.tick_round();
    }
  }

  const sim::Topology& topo_;
  SyncGhsOptions opts_;
  double radius_;
  sim::EnergyMeter meter_;

  std::vector<NodeId> frag_;                    // fragment leader per node
  std::vector<std::vector<NodeId>> tree_adj_;   // fragment tree adjacency
  std::vector<graph::Edge> tree_;
  std::vector<std::unordered_map<NodeId, NodeId>> cache_;  // neighbor -> frag
  std::vector<bool> in_tree_;    // per global edge index
  std::vector<bool> rejected_;   // per global edge index (probe mode)
  std::unordered_set<NodeId> passive_;
  std::unordered_set<NodeId> finished_;
  std::size_t max_phases_ = 0;
  TxBatch batch_;  // open announcement batch (when logging)
};

}  // namespace

SyncGhsResult run_sync_ghs(const sim::Topology& topo, const SyncGhsOptions& options,
                           const std::optional<FragmentForest>& seed,
                           sim::EnergyMeter* external_meter) {
  SyncGhsEngine engine(topo, options, seed);
  SyncGhsResult result = engine.run();
  if (external_meter != nullptr) external_meter->absorb(result.run.totals);
  return result;
}

std::vector<std::size_t> fragment_census(const sim::Topology& topo,
                                         const FragmentForest& forest,
                                         sim::EnergyMeter& meter) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(forest.leader.size() == n);
  // "One broadcast and one convergecast" (§V): the leader floods a size
  // query down its tree, then member counts fold back up — one unicast per
  // tree edge in each direction.
  std::vector<NodeId> leaders;
  {
    std::unordered_set<NodeId> unique(forest.leader.begin(), forest.leader.end());
    leaders.assign(unique.begin(), unique.end());
  }
  const auto parent = sim::forest_parents(n, forest.tree, leaders);
  const auto schedule = sim::make_schedule(parent);
  // Size query down (payload irrelevant; the message must still be paid).
  (void)sim::tree_broadcast<std::uint8_t>(
      topo, parent, schedule, std::vector<std::uint8_t>(n, 0),
      [](std::uint8_t v, NodeId) { return v; }, meter);
  // Member counts up.
  const auto subtree = sim::tree_convergecast<std::size_t>(
      topo, parent, schedule, std::vector<std::size_t>(n, 1),
      [](std::size_t a, std::size_t b) { return a + b; }, meter);
  std::vector<std::size_t> out(n);
  for (NodeId u = 0; u < n; ++u) out[u] = subtree[forest.leader[u]];
  return out;
}

}  // namespace emst::ghs
