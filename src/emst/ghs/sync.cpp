// Defines the entry point it declares.
#define EMST_NO_DEPRECATE
#include "emst/ghs/sync.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "emst/proto/fragment.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/parallel.hpp"

namespace emst::ghs {
namespace {

constexpr NodeId kNone = graph::kNoNode;
constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);

/// Driver for one phase-synchronous GHS run. The protocol choreography is
/// deterministic, so the driver walks fragment trees itself and charges the
/// meter for every message the distributed execution would send; the only
/// state a node may consult is state the message flow actually delivered to
/// it (its own fragment id, its neighbor cache, probe replies).
///
/// Templated over the topology backend: the engine only asks for
/// neighbourhoods (`neighbors_within`), distances and counts, all of which
/// both the materialized and the implicit topology serve in the same
/// canonical order — so both backends produce bitwise-identical runs.
///
/// Memory model (docs/PERF.md): per-node state is sparse, per the paper's
/// modified GHS. The fault-free cached flavour holds only the fragment
/// leader array — a complete, current neighbor cache is semantically
/// identical to "look up the neighbour's leader", so the cache itself is
/// never materialised. The explicit per-node cache maps exist only under
/// faults (where entries can go stale) and the per-node rejected sets only
/// in probe mode. Nothing in the engine is Θ(m) or indexed by a global
/// edge list.
///
/// Fault mode (docs/ROBUSTNESS.md): every driver unicast becomes a
/// stop-and-wait ARQ session (sim::ArqLink), so the meter pays for every
/// retransmission and every ACK; a session that gives up means the payload
/// never arrived, and the affected fragment aborts its MOE selection for
/// the phase rather than commit to partial information. Crash repair runs
/// at phase boundaries. With faults and ARQ both off, every branch below
/// reduces to the fault-free engine — byte-identical energy and rounds.
template <typename Topo>
class SyncGhsEngine {
 public:
  SyncGhsEngine(const Topo& topo, const SyncGhsOptions& options,
                const std::optional<FragmentForest>& seed,
                sim::EnergyMeter* external_meter)
      : topo_(topo),
        opts_(options),
        radius_(options.radius > 0.0 ? options.radius : topo.max_radius()),
        own_meter_(options.pathloss),
        meter_(external_meter != nullptr ? *external_meter : own_meter_),
        start_totals_(meter_.snapshot()),
        own_session_(options.fault_session != nullptr
                         ? sim::FaultInjector()
                         : sim::FaultInjector(options.faults)),
        fault_(options.fault_session != nullptr ? options.fault_session
                                                : &own_session_),
        link_(fault_, options.arq),
        faulty_(fault_->enabled() || options.arq.enabled),
        start_fault_stats_(fault_->stats()),
        frags_(topo.node_count()) {
    EMST_ASSERT(radius_ <= topo_.max_radius() * (1.0 + 1e-12));
    const std::size_t n = topo_.node_count();
    // Sparse per-node state: the explicit cache only under faults (stale
    // entries are then possible, so it carries real information), the
    // rejected sets only in probe mode.
    if (faulty_ && opts_.neighbor_cache) cache_.assign(n, {});
    if (!opts_.neighbor_cache) rejected_.assign(n, {});
    if (fault_->enabled()) was_crashed_.assign(n, false);
    if (seed) {
      EMST_ASSERT(seed->leader.size() == n);
      frags_.assign_leaders(seed->leader);
      for (const graph::Edge& e : seed->tree) frags_.add_tree_edge(e);
    }
    for (NodeId p : opts_.passive_fragments) passive_.insert(p);
    // Wire sizing: this driver names fragments by leader id, so fragment
    // fields are id-width; the choreographed charges bill each message type
    // at its worst-case encoded size (a real transmitter cannot shrink a
    // frame it has not built yet).
    wire_ctx_ = proto::WireContext::for_topology(n, topo.edge_count());
    wire_ctx_.frag_bits = wire_ctx_.id_bits;
    for (std::size_t t = 0; t < type_bits_.size(); ++t)
      type_bits_[t] =
          proto::max_encoded_bits(static_cast<GhsMsgType>(t), wire_ctx_);
    // Shared-meter runs (EOPT stages) must not wipe ledgers or detach
    // telemetry the caller already configured — guard every toggle.
    if (fault_->enabled()) fault_->set_chaos_env(n, topo_.points());
    if (opts_.track_per_node_energy && meter_.per_node().size() != n)
      meter_.enable_per_node(n);
    if (opts_.record_breakdown) meter_.enable_breakdown();
    if (opts_.telemetry != nullptr) meter_.attach_telemetry(opts_.telemetry);
    // Fault-mode runs burn phases on stalls and repairs, so the automatic
    // cap gets headroom; explicit caps are honored as given.
    max_phases_ = opts_.max_phases > 0
                      ? opts_.max_phases
                      : (static_cast<std::size_t>(
                             4.0 * std::log2(static_cast<double>(n) + 2.0)) +
                         16) *
                            (faulty_ ? 4 : 1);
  }

  SyncGhsResult run() {
    if (opts_.neighbor_cache && opts_.announce_initial) announce_all();
    std::size_t phases = 0;
    std::vector<std::size_t> trajectory;
    for (;;) {
      trajectory.push_back(fragment_count());
      if (!run_phase()) break;
      ++phases;
      if (phases > max_phases_) {
        // Fault-free runs treat the cap as a hard invariant; under faults a
        // permanently dead neighborhood can legitimately starve a fragment,
        // so stop gracefully and report the partial forest.
        EMST_ASSERT_MSG(faulty_, "sync GHS exceeded phase cap");
        hit_phase_cap_ = true;
        break;
      }
    }
    SyncGhsResult result;
    result.run.tree = frags_.tree();
    graph::sort_edges(result.run.tree);
    // Delta against entry so shared-meter (EOPT stage) runs report only
    // their own traffic; standalone runs start from zero, so x - 0 == x
    // bitwise and nothing changes for them.
    result.run.totals = meter_.totals() - start_totals_;
    result.run.phases = phases;
    result.run.fragments = fragment_count();
    result.final_forest.leader = frags_.leaders();
    result.final_forest.tree = result.run.tree;
    result.fragments_per_phase = std::move(trajectory);
    result.run.per_node_energy = meter_.per_node();
    if (meter_.breakdown_enabled()) {
      result.run.energy_breakdown = meter_.breakdown();
      result.run.breakdown_recorded = true;
    }
    result.run.telemetry = meter_.telemetry();
    result.arq = link_.stats();
    result.faults.lost = fault_->stats().lost - start_fault_stats_.lost;
    result.faults.dropped_crashed =
        fault_->stats().dropped_crashed - start_fault_stats_.dropped_crashed;
    result.faults.suppressed =
        fault_->stats().suppressed - start_fault_stats_.suppressed;
    result.injected_crashes = fault_->injected_schedule();
    result.hit_phase_cap = hit_phase_cap_;
    return result;
  }

  [[nodiscard]] std::size_t fragment_count() const {
    return frags_.fragment_count();
  }

  [[nodiscard]] const sim::EnergyMeter& meter() const noexcept { return meter_; }

 private:
  using Candidate = proto::FragmentSet::MergeCandidate;

  /// Result of one member's MOE scan. `conclusive == false` means some edge
  /// cheaper than `best` could not be classified (probe gave up, neighbor
  /// down) — the fragment must not trust `best` this phase.
  struct MoeScan {
    Candidate best;
    bool conclusive = true;
  };

  /// BFS order of one fragment (order[0] = leader) plus its depth; parents
  /// live in the engine-wide flat `parent_` array (fragments are disjoint
  /// node sets, so the array is shared without conflicts).
  struct FlatView {
    std::vector<NodeId> order;
    std::size_t max_depth = 0;
  };

  [[nodiscard]] std::uint32_t bits_of(GhsMsgType type) const noexcept {
    return type_bits_[static_cast<std::size_t>(type)];
  }

  /// Advance simulated time on the meter AND the fault clock together. This
  /// is the driver's round barrier: chaos-controller consults happen inside
  /// advance_rounds (one per round), injections are mirrored into the
  /// telemetry stream here, and the invariant oracle's per-round hook runs.
  void tick(std::uint64_t k) {
    meter_.tick_rounds(k);
    if (faulty_) {
      fault_->advance_rounds(k);
      for (const sim::CrashWindow& w : fault_->take_new_injections())
        meter_.note_event(sim::EventType::kCrashInject, w.node,
                          sim::kNoEventNode, 0.0, w.until);
    }
    if (opts_.oracle != nullptr)
      opts_.oracle->on_round(meter_.totals().rounds, meter_);
  }

  /// Charge one logical unicast into a wave buffer (for per-wave batching
  /// of the interference log), tagged with its protocol message type for
  /// telemetry / breakdown attribution. In fault mode the message runs a
  /// full ARQ session; the return value says whether the payload reached v.
  /// Fault-free mode always delivers.
  bool charge_wave(TxBatch& wave, NodeId u, NodeId v, GhsMsgType type) {
    const double d = topo_.distance(u, v);
    meter_.set_kind(to_msg_kind(type));
    meter_.set_fragment(frags_.leader(u));
    // The choreographed driver never materialises a frame, so it bills the
    // type's worst-case wire size; the ARQ link reads the same ambient bits
    // as the session payload.
    meter_.set_bits(bits_of(type));
    if (!faulty_) {
      meter_.charge_unicast(u, v, d);
      meter_.clear_bits();
      if (opts_.transmission_log != nullptr) wave.push_back({u, v, d, false});
      return true;
    }
    const sim::ArqOutcome out = link_.transmit(meter_, u, v, d);
    meter_.clear_bits();
    phase_extra_rounds_ += out.extra_rounds;
    if (opts_.transmission_log != nullptr) {
      for (std::uint32_t i = 0; i < out.data_attempts; ++i)
        wave.push_back({u, v, d, false});
      for (std::uint32_t i = 0; i < out.ack_attempts; ++i)
        wave.push_back({v, u, d, false});
    }
    return out.delivered;
  }

  /// Close the current concurrency batch (no-op when not logging or empty).
  void flush_batch() {
    if (opts_.transmission_log == nullptr || batch_.empty()) return;
    opts_.transmission_log->push_back(std::move(batch_));
    batch_.clear();
  }

  /// One local broadcast of u's fragment id; every receiver updates its
  /// cached entry for u. With announce_min_power the transmit power shrinks
  /// to the farthest neighbour's distance — identical receiver set, less
  /// energy (neighbours are sorted ascending, so .back() is the farthest).
  /// Announcements carry NO ARQ (they are broadcasts): in fault mode each
  /// receiver independently draws a channel fate, and missed updates are
  /// repaired lazily by the reliable TEST path in local_moe. Fault-free
  /// runs skip the receiver bookkeeping entirely (the leader array already
  /// holds what a complete cache would) — the charges are identical.
  void announce(NodeId u) {
    meter_.set_kind(sim::MsgKind::kAnnounce);
    meter_.set_fragment(frags_.leader(u));
    meter_.set_bits(bits_of(GhsMsgType::kAnnounce));
    if (fault_->enabled() && fault_->crashed(u)) {
      ++fault_->stats().suppressed;
      meter_.note_event(sim::EventType::kSuppress, u, sim::kNoEventNode,
                        radius_);
      meter_.clear_bits();
      return;
    }
    const auto receivers = neighbors_within(topo_, u, radius_);
    const double power = opts_.announce_min_power
                             ? (receivers.empty() ? 0.0 : receivers.back().w)
                             : radius_;
    meter_.charge_broadcast(u, power, receivers.size());
    if (opts_.transmission_log != nullptr) {
      batch_.push_back({u, u, power, true});
    }
    if (!cache_.empty()) {
      for (const graph::Neighbor& nb : receivers) {
        if (fault_->enabled()) {
          if (fault_->drop(u, nb.id)) {
            ++fault_->stats().lost;
            meter_.note_event(sim::EventType::kLoss, u, nb.id, nb.w);
            continue;
          }
          if (fault_->crashed(nb.id)) {
            ++fault_->stats().dropped_crashed;
            meter_.note_event(sim::EventType::kCrashDrop, u, nb.id, nb.w);
            continue;
          }
        }
        cache_[nb.id][u] = frags_.leader(u);
      }
    }
    meter_.clear_bits();
  }

  /// Repair-time announcement (the modeled failure detector): charged like
  /// a regular announcement, but delivered to every live neighbor — the
  /// repair channel keeps retrying until the neighborhood agrees. This is
  /// what restores the containment argument for stale "same fragment"
  /// cache hits after a split (docs/ROBUSTNESS.md).
  void announce_repair(NodeId u) {
    if (fault_->crashed(u)) return;  // dead nodes stay silent
    meter_.set_kind(sim::MsgKind::kAnnounce);
    meter_.set_fragment(frags_.leader(u));
    meter_.set_bits(bits_of(GhsMsgType::kAnnounce));
    const auto receivers = neighbors_within(topo_, u, radius_);
    const double power = opts_.announce_min_power
                             ? (receivers.empty() ? 0.0 : receivers.back().w)
                             : radius_;
    meter_.charge_broadcast(u, power, receivers.size());
    if (opts_.transmission_log != nullptr) {
      batch_.push_back({u, u, power, true});
    }
    for (const graph::Neighbor& nb : receivers) {
      if (!fault_->crashed(nb.id)) cache_[nb.id][u] = frags_.leader(u);
    }
    meter_.clear_bits();
  }

  void announce_all() {
    for (NodeId u = 0; u < topo_.node_count(); ++u) announce(u);
    flush_batch();
    tick(1);
  }

  /// Local MOE of node u: cheapest incident edge leaving the fragment, found
  /// by cache lookup (modified) or TEST probing (classic). Probing charges
  /// 2 messages per probe and permanently rejects intra-fragment edges.
  ///
  /// Fault-free cached mode consults the fragment-leader array directly: a
  /// complete, current cache entry for v is by definition v's leader (every
  /// id change re-announces before the next scan), so the lookup answers —
  /// and the messages charged (none) — are identical to a materialised
  /// cache without storing Θ(n·deg) state.
  ///
  /// Fault mode: a cached id EQUAL to our own is trusted even if stale
  /// (between repairs fragments only merge, and repairs re-announce, so the
  /// containment argument applies — docs/ROBUSTNESS.md). A missing or
  /// differing entry is only a hint and is confirmed with a reliable TEST
  /// exchange before the edge may become the MOE; an exchange that gives up
  /// leaves the edge undecided and the scan inconclusive. Neighbors the
  /// failure detector knows are permanently dead are skipped outright.
  [[nodiscard]] MoeScan local_moe(NodeId u, std::size_t& probes,
                                  TxBatch& probe_wave) {
    MoeScan scan;
    for (const graph::Neighbor& nb : neighbors_within(topo_, u, radius_)) {
      if (opts_.neighbor_cache) {
        if (!faulty_) {
          EMST_ASSERT_MSG(opts_.announce_initial,
                          "modified GHS: neighbor cache must be complete");
          if (frags_.leader(nb.id) == frags_.leader(u)) continue;
          scan.best = {nb.w, u, nb.id};
          break;  // neighbors ascend by weight: first hit is the minimum
        }
        const auto it = cache_[u].find(nb.id);
        if (it != cache_[u].end() && it->second == frags_.leader(u)) continue;
        if (fault_->crashed_forever(nb.id)) continue;
        ++probes;
        const bool test_ok =
            charge_wave(probe_wave, u, nb.id, GhsMsgType::kTest);  // TEST
        const bool reply_ok =
            test_ok && charge_wave(probe_wave, nb.id, u,
                                   frags_.leader(nb.id) == frags_.leader(u)
                                       ? GhsMsgType::kReject
                                       : GhsMsgType::kAccept);  // id reply
        if (!reply_ok) {
          scan.conclusive = false;  // undecided edge: nothing past it counts
          break;
        }
        // TEST replies carry both fragment ids: refresh both caches.
        cache_[u][nb.id] = frags_.leader(nb.id);
        cache_[nb.id][u] = frags_.leader(u);
        if (frags_.leader(nb.id) == frags_.leader(u)) continue;
        scan.best = {nb.w, u, nb.id};
        break;
      }
      // Classic probing: skip branch (tree) and rejected edges, TEST the rest.
      if (frags_.edge_in_tree(u, nb.id) || rejected_[u].count(nb.id) > 0)
        continue;
      if (faulty_ && fault_->crashed_forever(nb.id)) continue;
      const bool test_ok =
          charge_wave(probe_wave, u, nb.id, GhsMsgType::kTest);  // TEST
      const bool reply_ok =
          test_ok && charge_wave(probe_wave, nb.id, u,
                                 frags_.leader(nb.id) == frags_.leader(u)
                                     ? GhsMsgType::kReject
                                     : GhsMsgType::kAccept);  // ACCEPT/REJECT
      ++probes;
      if (faulty_ && !reply_ok) {
        scan.conclusive = false;
        break;
      }
      if (frags_.leader(nb.id) == frags_.leader(u)) {
        // Rejection is per undirected edge: both endpoints skip it forever.
        rejected_[u].insert(nb.id);
        rejected_[nb.id].insert(u);
        continue;
      }
      scan.best = {nb.w, u, nb.id};
      break;
    }
    return scan;
  }

  /// Phase-boundary crash repair (docs/ROBUSTNESS.md): drop tree edges
  /// incident to nodes that went down since the last repair, split their
  /// fragments back into consistent pieces with deterministically
  /// re-elected leaders (the surviving old leader where possible, else the
  /// minimum live member id), and let recovered nodes rejoin as singletons
  /// with wiped caches.
  void repair_crashes() {
    if (!fault_->enabled()) return;
    const std::size_t n = topo_.node_count();
    bool any_down_new = false;
    std::vector<NodeId> recovered;
    for (NodeId u = 0; u < n; ++u) {
      const bool down = fault_->crashed(u);
      if (down && !was_crashed_[u]) any_down_new = true;
      if (!down && was_crashed_[u]) recovered.push_back(u);
      was_crashed_[u] = down;
    }
    if (!any_down_new && recovered.empty()) return;

    std::vector<NodeId> reannounce;
    if (any_down_new) {
      // Tree surgery + leader re-election is shared protocol bookkeeping.
      reannounce = frags_.repair(was_crashed_);
      // Fragment membership changed: finished flags and probe rejections
      // may no longer hold, and a dead giant loses its passivity.
      finished_.clear();
      for (auto& r : rejected_) r.clear();
      for (auto it = passive_.begin(); it != passive_.end();) {
        if (was_crashed_[*it]) {
          it = passive_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (NodeId u : recovered) {
      // A rebooted node knows it rebooted: wipe its stale cache and
      // re-introduce itself (it is its own singleton fragment).
      if (!cache_.empty()) cache_[u].clear();
      reannounce.push_back(u);
    }
    if (opts_.neighbor_cache && !reannounce.empty()) {
      std::sort(reannounce.begin(), reannounce.end());
      reannounce.erase(std::unique(reannounce.begin(), reannounce.end()),
                       reannounce.end());
      for (NodeId u : reannounce) announce_repair(u);
      flush_batch();
      tick(1);
    }
  }

  /// BFS one fragment's tree into `view` (level-synchronous, which equals
  /// queue order) and record parents in the flat array. A tree needs no
  /// visited set: from u, every tree neighbor except parent_[u] is an
  /// undiscovered child.
  void build_view(NodeId leader, FlatView& view) {
    view.order.clear();
    view.max_depth = 0;
    parent_[leader] = kNone;
    view.order.push_back(leader);
    const auto& adj = frags_.tree_adjacency();
    std::size_t level_begin = 0;
    while (level_begin < view.order.size()) {
      const std::size_t level_end = view.order.size();
      for (std::size_t i = level_begin; i < level_end; ++i) {
        const NodeId u = view.order[i];
        for (const NodeId v : adj[u]) {
          if (v == parent_[u]) continue;
          parent_[v] = u;
          view.order.push_back(v);
        }
      }
      if (view.order.size() > level_end) ++view.max_depth;
      level_begin = level_end;
    }
  }

  /// Execute one phase. Returns false when the run is complete (every
  /// fragment finished, passive, or — under faults — permanently dead).
  bool run_phase() {
    if (faulty_) repair_crashes();
    if (fault_->enabled()) {
      // Publish the phase-boundary census to the chaos controller. The
      // injector keeps spans, and FragmentSet's vectors reallocate across
      // merges, so the snapshot lives in engine-owned buffers that stay
      // stable until the next publish.
      fault_->note_phase_boundary();
      chaos_leaders_ = frags_.leaders();
      chaos_tree_ = frags_.tree();
      fault_->publish_fragments(chaos_leaders_, chaos_tree_);
    }
    if (opts_.oracle != nullptr) {
      const std::uint64_t round = meter_.totals().rounds;
      opts_.oracle->check_fragments(round, frags_.leaders(), frags_.tree(),
                                    &meter_);
      opts_.oracle->check_energy_deep(round, meter_);
    }

    const std::size_t n = topo_.node_count();
    // Group members by fragment leader, fragments ordered by their minimum
    // member id (first occurrence in a node-id scan): deterministic across
    // runs and across topology backends — the per-fragment charge order
    // below follows this grouping.
    leaders_.clear();
    member_slot_.assign(n, kNoSlot);
    for (NodeId u = 0; u < n; ++u) {
      const NodeId l = frags_.leader(u);
      if (member_slot_[l] == kNoSlot) {
        member_slot_[l] = static_cast<std::uint32_t>(leaders_.size());
        leaders_.push_back(l);
      }
    }
    if (members_.size() < leaders_.size()) members_.resize(leaders_.size());
    for (std::size_t i = 0; i < leaders_.size(); ++i) members_[i].clear();
    for (NodeId u = 0; u < n; ++u)
      members_[member_slot_[frags_.leader(u)]].push_back(u);

    // Active fragments select their MOEs. When logging, the phase's
    // messages group into four concurrency waves across all fragments.
    std::vector<std::pair<NodeId, Candidate>> selected;
    TxBatch initiate_wave;
    TxBatch probe_wave;
    TxBatch report_wave;
    TxBatch changeroot_wave;
    std::size_t max_depth = 0;
    std::size_t max_probes = 0;
    phase_extra_rounds_ = 0;
    // Collect the phase's active fragments first, then build all fragment
    // views in parallel when the run asks for threads: the BFS reads only
    // the tree adjacency and each task writes its own order vector plus
    // disjoint parent_ entries, so every charge below still happens in the
    // exact single-threaded order.
    std::vector<std::pair<NodeId, const std::vector<NodeId>*>> active;
    for (std::size_t i = 0; i < leaders_.size(); ++i) {
      const NodeId leader = leaders_[i];
      if (passive_.count(leader) > 0 || finished_.count(leader) > 0) continue;
      // Crashed nodes sit out as dormant singletons until they recover
      // (repair guarantees multi-node fragments start each phase all-alive).
      if (faulty_ && fault_->crashed(leader)) continue;
      active.emplace_back(leader, &members_[i]);
    }
    if (parent_.size() < n) parent_.assign(n, kNone);
    std::vector<FlatView> views(active.size());
    support::parallel_for(
        active.size(),
        [&](std::size_t i) { build_view(active[i].first, views[i]); },
        opts_.threads > 1 ? opts_.threads : 1);
    for (std::size_t ai = 0; ai < active.size(); ++ai) {
      const NodeId leader = active[ai].first;
      const std::vector<NodeId>& nodes = *active[ai].second;
      const FlatView& view = views[ai];
      EMST_ASSERT_MSG(view.order.size() == nodes.size(),
                      "fragment tree must span exactly the fragment members");
      max_depth = std::max(max_depth, view.max_depth);

      // INITIATE flood: one unicast per tree edge, leader to leaves. In
      // fault mode, track which members the flood actually reached — a node
      // that never heard INITIATE neither probes nor reports, and the
      // fragment must not commit to an MOE chosen from partial information.
      bool intact = true;
      std::unordered_set<NodeId> reached;
      if (faulty_) reached.insert(leader);
      for (NodeId v : view.order) {
        const NodeId p = parent_[v];
        if (p == kNone) continue;
        if (!faulty_) {
          charge_wave(initiate_wave, p, v, GhsMsgType::kInitiate);
          continue;
        }
        if (reached.count(p) == 0) {
          intact = false;  // parent has nothing to forward: no transmission
          continue;
        }
        if (charge_wave(initiate_wave, p, v, GhsMsgType::kInitiate)) {
          reached.insert(v);
        } else {
          intact = false;
        }
      }

      // Local MOEs + REPORT convergecast (one unicast per tree edge).
      Candidate best;
      bool conclusive = true;
      std::size_t probes = 0;
      for (NodeId v : view.order) {
        if (faulty_ && reached.count(v) == 0) continue;
        const MoeScan scan = local_moe(v, probes, probe_wave);
        if (!scan.conclusive) conclusive = false;
        if (proto::FragmentSet::candidate_less(scan.best, best))
          best = scan.best;
        if (parent_[v] != kNone) {
          if (!charge_wave(report_wave, v, parent_[v], GhsMsgType::kReport)) {
            intact = false;
          }
        }
      }
      max_probes = std::max(max_probes, probes);
      // Commit only with complete information: intact waves and conclusive
      // scans guarantee `best` is the fragment's true MOE, which is what
      // keeps the selected-edge graph cycle-free (mutual picks aside).
      if (faulty_ && (!intact || !conclusive)) continue;
      if (!best.valid()) {
        finished_.insert(leader);  // fragment spans its whole component
        continue;
      }
      // CHANGE-ROOT down the tree path leader→owner, then CONNECT over MOE.
      // The chain is sequential: a lost hop means no CONNECT this phase and
      // the fragment simply retries next phase.
      NodeId hop = best.from;
      std::vector<NodeId> path;
      while (hop != kNone) {
        path.push_back(hop);
        hop = parent_[hop];
      }
      bool chain_ok = true;
      for (std::size_t i = path.size(); i-- > 1;) {
        if (!charge_wave(changeroot_wave, path[i], path[i - 1],
                         GhsMsgType::kChangeRoot)) {
          chain_ok = false;
          break;
        }
      }
      if (chain_ok) {
        chain_ok = charge_wave(changeroot_wave, best.from, best.to,
                               GhsMsgType::kConnect);  // CONNECT
      }
      if (chain_ok) selected.emplace_back(leader, best);
    }
    if (opts_.transmission_log != nullptr) {
      for (TxBatch* wave :
           {&initiate_wave, &probe_wave, &report_wave, &changeroot_wave}) {
        if (!wave->empty()) opts_.transmission_log->push_back(std::move(*wave));
      }
    }
    // Synchronous-time estimate for this phase: initiate flood + report
    // convergecast (depth each), the probe sequence, change-root + connect,
    // plus whatever the ARQ sessions spent waiting on timeouts.
    tick(2 * max_depth + 2 * max_probes + 2 + phase_extra_rounds_);
    phase_extra_rounds_ = 0;

    if (!selected.empty()) {
      merge(selected);
      return true;
    }
    if (!faulty_) return false;
    // No fragment committed an MOE. The run is over only when nothing is
    // left to do; otherwise this phase stalled on faults — go again.
    for (std::size_t i = 0; i < leaders_.size(); ++i) {
      const NodeId leader = leaders_[i];
      if (passive_.count(leader) > 0 || finished_.count(leader) > 0) continue;
      bool dormant = true;
      for (NodeId u : members_[i]) {
        if (!fault_->crashed_forever(u)) {
          dormant = false;
          break;
        }
      }
      if (!dormant) return true;
    }
    return false;
  }

  /// Borůvka contraction of the selected MOEs (shared bookkeeping in
  /// proto::FragmentSet, with the paper's passive-id retention), followed by
  /// the modified-GHS announcements of every relabeled node.
  void merge(std::vector<std::pair<NodeId, Candidate>>& selected) {
    // FragmentSet::merge wants the commitments sorted ascending by leader.
    std::sort(selected.begin(), selected.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::vector<NodeId> changed =
        frags_.merge(selected, passive_, opts_.retain_passive_id);
    if (opts_.neighbor_cache) {
      for (NodeId u : changed) announce(u);
      flush_batch();
      if (!changed.empty()) tick(1);
    }
  }

  const Topo& topo_;
  SyncGhsOptions opts_;
  double radius_;
  sim::EnergyMeter own_meter_;         ///< used unless an external meter
  sim::EnergyMeter& meter_;            ///< the meter every charge lands on
  sim::Accounting start_totals_;       ///< shared-meter totals at entry
  sim::FaultInjector own_session_;     ///< used unless opts_.fault_session
  sim::FaultInjector* fault_;          ///< the active fault session
  sim::ArqLink link_;                  ///< ARQ simulator over fault_
  bool faulty_;                        ///< any fault/ARQ machinery active
  sim::FaultStats start_fault_stats_;  ///< shared-session counters at entry

  proto::FragmentSet frags_;  // fragment identity + forest bookkeeping
  proto::WireContext wire_ctx_;  // field widths for this topology
  /// Worst-case encoded size per message type — what the choreographed
  /// charges bill (the actor driver bills exact per-message sizes).
  std::array<std::uint32_t, static_cast<std::size_t>(GhsMsgType::kTypeCount)>
      type_bits_{};
  /// neighbor -> frag, fault-mode modified GHS only (empty otherwise): a
  /// fault-free cache is always complete and current, so the leader array
  /// substitutes for it exactly.
  std::vector<std::unordered_map<NodeId, NodeId>> cache_;
  /// Per-node rejected neighbors (probe mode only, empty otherwise).
  std::vector<std::unordered_set<NodeId>> rejected_;
  std::vector<bool> was_crashed_;  // crash state at the last repair
  // Chaos census snapshots: stable storage behind the spans the fault
  // injector hands the controller (refreshed at every phase boundary).
  std::vector<NodeId> chaos_leaders_;
  std::vector<graph::Edge> chaos_tree_;
  std::unordered_set<NodeId> passive_;
  std::unordered_set<NodeId> finished_;
  std::size_t max_phases_ = 0;
  std::uint64_t phase_extra_rounds_ = 0;  // ARQ timeout rounds this phase
  bool hit_phase_cap_ = false;
  TxBatch batch_;  // open announcement batch (when logging)
  // Per-phase scratch, reused across phases so the grouping pass allocates
  // nothing in steady state.
  std::vector<NodeId> leaders_;             ///< fragments, by min member id
  std::vector<std::uint32_t> member_slot_;  ///< leader id -> leaders_ slot
  std::vector<std::vector<NodeId>> members_;  ///< parallel to leaders_
  std::vector<NodeId> parent_;  ///< flat BFS parents (active fragments)
};

}  // namespace

template <typename Topo>
SyncGhsResult run_sync_ghs(const Topo& topo, const SyncGhsOptions& options,
                           const std::optional<FragmentForest>& seed,
                           sim::EnergyMeter* external_meter) {
  SyncGhsEngine<Topo> engine(topo, options, seed, external_meter);
  return engine.run();
}

template SyncGhsResult run_sync_ghs<sim::Topology>(
    const sim::Topology&, const SyncGhsOptions&,
    const std::optional<FragmentForest>&, sim::EnergyMeter*);
template SyncGhsResult run_sync_ghs<sim::ImplicitTopology>(
    const sim::ImplicitTopology&, const SyncGhsOptions&,
    const std::optional<FragmentForest>&, sim::EnergyMeter*);

}  // namespace emst::ghs
