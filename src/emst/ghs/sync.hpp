// Phase-synchronous GHS and the paper's *modified* GHS (§V-A).
//
// Each phase, every fragment: (1) floods an INITIATE down its fragment tree,
// (2) every member determines its local minimum outgoing edge (MOE),
// (3) a REPORT convergecast carries the fragment MOE to the leader,
// (4) the leader CHANGE-ROOTs to the MOE endpoint, which sends CONNECT, and
// (5) fragments linked by chosen MOEs merge (Borůvka contraction).
//
// The two MOE-discovery modes realize the baseline/modified split:
//  - `neighbor_cache = false` (classic flavour): a node probes its basic
//    edges in ascending weight with TEST messages; the probed neighbor
//    answers ACCEPT/REJECT, and rejected (intra-fragment) edges are never
//    probed again — the classical O(|E| + n·φ) test/reject budget.
//  - `neighbor_cache = true` (modified GHS): every node caches each
//    neighbor's fragment id; after a merge only nodes whose id changed
//    announce it with ONE local broadcast, and MOE discovery is a zero-
//    message table lookup. Message complexity drops to O(n·φ).
//
// Step-2 specific options (paper §V-A, last paragraph):
//  - passive fragments ("the giant") never initiate, test, or report — they
//    only accept CONNECT messages from small fragments;
//  - a merge group containing a passive fragment keeps the passive
//    fragment's id, so its members never re-announce.
//
// The run can be seeded with an existing fragment forest (EOPT Step 2
// continues from the Step-1 fragments).
//
// Fault-aware mode (docs/ROBUSTNESS.md): with a `FaultModel` and/or ARQ
// enabled, every driver-charged unicast becomes a stop-and-wait ARQ session
// (`sim::ArqLink`), announcements suffer per-receiver drops, crashed nodes
// go silent, and each phase only commits a fragment's MOE when the fragment
// had complete information (intact waves, no inconclusive probes) — a
// fragment with any give-up simply retries next phase. Crash repair runs at
// phase boundaries: tree edges incident to crashed nodes are removed, the
// surviving components re-elect leaders deterministically and re-announce
// (the modeled failure detector). With faults and ARQ both disabled every
// code path, energy total, and round count is byte-identical to the
// fault-free engine.
#pragma once

#include <optional>

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"
#include "emst/proto/fragment.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/run_config.hpp"
#include "emst/support/deprecated.hpp"

namespace emst::ghs {

/// A fragment forest: per-node fragment leader and the tree edges built so
/// far. Fragment ids are leader node ids.
struct FragmentForest {
  std::vector<NodeId> leader;       ///< per node: its fragment's leader
  std::vector<graph::Edge> tree;    ///< edges of all fragment trees
};

/// Options embed the shared `sim::RunConfig` knobs (pathloss, faults, ARQ,
/// per-node / breakdown / telemetry toggles) — `options.pathloss = ...`
/// etc. keeps compiling exactly as before the RunConfig extraction.
struct SyncGhsOptions : sim::RunConfig {
  /// Operating transmission radius (≤ topology max radius; <= 0 → max).
  double radius = 0.0;
  /// true = modified GHS (neighbor cache + announcements);
  /// false = classic TEST/ACCEPT/REJECT probing.
  bool neighbor_cache = true;
  /// Broadcast one initial id announcement per node before phase 1 (needed
  /// whenever caches are empty or the radius grew since they were filled).
  bool announce_initial = true;
  /// Power-adapt announcements: broadcast only as far as the node's farthest
  /// neighbour in the operating topology instead of the full radius. Reaches
  /// the same receiver set (so correctness is untouched) at d_max^α ≤ r^α
  /// energy; requires the node to know its neighbour distances — which the
  /// modified GHS assumes anyway ("with their distance information", §V-A).
  /// On sparse logical topologies (Gabriel graph) this is the coordinate
  /// lever the §VIII open question asks about.
  bool announce_min_power = false;
  /// Fragments (by leader id) that only accept connections (the giant).
  std::vector<NodeId> passive_fragments;
  /// Merge groups containing a passive fragment keep the passive id.
  bool retain_passive_id = true;
  /// Safety cap on phases (0 = automatic: 4·log2(n) + 16).
  std::size_t max_phases = 0;
  /// When non-null, every transmission is also appended to this log, one
  /// batch per protocol wave (initial announce; per phase: initiate wave,
  /// MOE probes, report wave, change-root+connect, merge announcements) —
  /// the input to mac::replay_log for end-to-end interference accounting.
  TxLog* transmission_log = nullptr;
  /// Share a fault session across runs (EOPT threads ONE injector through
  /// Step 1 → census → Step 2 so loss draws and the crash clock continue
  /// across stages). When non-null, `faults` above is ignored.
  sim::FaultInjector* fault_session = nullptr;
};

struct SyncGhsResult {
  MstRunResult run;            ///< tree includes seed edges
  FragmentForest final_forest; ///< fragmentation when the run stopped
  /// Fragment count before each phase (Borůvka trajectory: every phase at
  /// least halves the number of active fragments, so the series is
  /// geometric — tested). Under faults, stalled phases repeat counts.
  std::vector<std::size_t> fragments_per_phase;
  /// ARQ traffic counters for this run (all zero when faults + ARQ off).
  sim::ArqStats arq{};
  /// Fault-layer drop counters observed during this run.
  sim::FaultStats faults{};
  /// Crash windows a chaos controller injected on the fault session, in
  /// injection order (session-cumulative when `fault_session` is shared —
  /// EOPT stages see the whole adversarial schedule). Replaying them as a
  /// static `FaultModel::crashes` list reproduces the adversarial run.
  std::vector<sim::CrashWindow> injected_crashes;
  /// Fault-mode runs stop (instead of aborting) at the phase cap when
  /// permanent losses leave fragments unable to finish; true if that
  /// happened and `final_forest` is a partial result.
  bool hit_phase_cap = false;

  /// The algorithm-independent view (docs/API_TOUR.md). Non-owning.
  [[nodiscard]] RunReport report() const {
    RunReport out = run.report();
    out.faults = faults;
    out.arq = arq;
    out.hit_phase_cap = hit_phase_cap;
    return out;
  }
};

/// Run phase-synchronous (modified) GHS. `seed` continues from an existing
/// fragment forest; nullopt starts from singletons. `external_meter`, when
/// non-null, is charged DIRECTLY — all transmissions, breakdown cells and
/// telemetry events land on the caller's meter (EOPT charges Step 1 +
/// census + Step 2 to one meter under per-step phase scopes), and the
/// result's totals report this run's delta.
///
/// Templated over the topology backend (`sim::Topology` or
/// `sim::ImplicitTopology`); defined in sync.cpp and explicitly
/// instantiated for both. Results are bitwise-identical across backends —
/// both enumerate neighbourhoods in the same canonical (weight, id) order.
template <typename Topo>
EMST_DEPRECATED("use the emst::run facade (emst/run.hpp)")
[[nodiscard]] SyncGhsResult run_sync_ghs(
    const Topo& topo, const SyncGhsOptions& options,
    const std::optional<FragmentForest>& seed = std::nullopt,
    sim::EnergyMeter* external_meter = nullptr);

/// Fragment-size census (EOPT Step 2 preamble): one broadcast down and one
/// convergecast up each fragment tree. Returns per-node size of its own
/// fragment; charges 2 unicasts per tree edge to `meter`. With `link`, each
/// tree message runs through the ARQ session simulator instead (give-ups
/// leave that subtree uncounted — the census degrades, it never wedges).
template <typename Topo>
[[nodiscard]] std::vector<std::size_t> fragment_census(
    const Topo& topo, const FragmentForest& forest, sim::EnergyMeter& meter,
    sim::ArqLink* link = nullptr) {
  // Delegates to the shared proto collective; fragment names here are
  // leader ids, so size the count field from the node-id width.
  proto::WireContext ctx =
      proto::WireContext::for_topology(topo.node_count(), topo.edge_count());
  ctx.frag_bits = ctx.id_bits;
  return proto::fragment_census(topo, forest.leader, forest.tree, meter, ctx,
                                link);
}

}  // namespace emst::ghs
