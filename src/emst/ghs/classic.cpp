// Defines the entry point it declares.
#define EMST_NO_DEPRECATE
#include "emst/ghs/classic.hpp"

#include <algorithm>

#include "emst/ghs/classic_actor.hpp"
#include "emst/sim/distributed_network.hpp"
#include "emst/sim/engine_factory.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/assert.hpp"

namespace emst::ghs {
namespace {

using GhsMsg = proto::GhsMsg;

// ---------------------------------------------------------------------------
// The protocol driver, templated on the network engine so the calendar-
// queue `sim::Network` and the `sim::ReferenceNetwork` oracle execute the
// EXACT same protocol code — any divergence (accounting, telemetry stream,
// tree) is an engine bug, not a driver difference. Also templated on the
// topology backend: fragment names are canonical edge indices, which the
// implicit backend serves from its edge-rank table (built up front by
// `prepare_edge_indices`), so the wire traffic is identical either way.
//
// Since the node-actor refactor the handlers themselves live in
// `ClassicGhsActor` (classic_actor.hpp); this driver owns the choreography
// — wakeups, the round loop, the deferred queue, fail-stop epochs — and the
// env that turns handler actions into engine calls. On the distributed
// engine the actor is installed INSIDE the rank processes and the driver
// replays the effect ledger instead (run_distributed below); every other
// engine dispatches the same actor serially.
// ---------------------------------------------------------------------------

template <typename Engine, typename Topo>
class ClassicGhsRun {
 public:
  ClassicGhsRun(const Topo& topo, const ClassicGhsOptions& options)
      : topo_(topo),
        radius_(options.radius > 0.0 ? options.radius : topo.max_radius()),
        moe_(options.moe),
        net_(sim::make_engine<Engine>(topo, options.pathloss,
                                      /*unbounded_broadcast=*/false,
                                      options.delays, options.faults,
                                      options.telemetry, options.threads,
                                      options.ranks)),
        actor_(topo, radius_, moe_),
        starters_(options.spontaneous_wakeups),
        faulty_(options.faults.enabled()) {
    EMST_ASSERT(radius_ <= topo.max_radius() * (1.0 + 1e-12));
    // Fail-stop only: the 1983 protocol has no loss recovery, so lossy
    // channels stay unsupported — crashes are survived by epoch restart
    // (docs/ROBUSTNESS.md), losses would need the sync drivers' ARQ.
    EMST_ASSERT_MSG(!options.arq.enabled, "classic GHS has no ARQ layer");
    EMST_ASSERT_MSG(options.faults.loss == 0.0 && !options.faults.use_gilbert,
                    "classic GHS accepts crash-only (fail-stop) fault models; "
                    "message loss needs ARQ recovery (sync GHS / EOPT)");
    if (options.oracle != nullptr) net_.attach_oracle(options.oracle);
    max_rounds_ = options.max_rounds > 0
                      ? options.max_rounds
                      : (50 * topo.node_count() + 1000) *
                            (options.delays.max_extra_delay + 1);
    // Fragment names are edge indices: the materialized backend carries
    // them natively, the implicit one builds its rank table now (no-op for
    // sim::Topology).
    prepare_edge_indices(topo_);
    // Codec hook: the engine measures every message through the proto wire
    // format once the field widths are derived from the topology.
    net_.wire_format().ctx = proto::WireContext::for_topology(
        topo.node_count(), topo.edge_count());
    if (options.track_per_node_energy)
      net_.meter().enable_per_node(topo.node_count());
    if (options.record_breakdown) net_.meter().enable_breakdown();
  }

  MstRunResult run() {
    if constexpr (sim::DistributedEngine<Engine>) {
      return run_distributed();
    } else {
      return run_serial();
    }
  }

 private:
  using Actor = ClassicGhsActor<Topo>;
  using Delivery = sim::Delivery<GhsMsg>;

  /// The serial env: handler actions become immediate engine calls, in the
  /// exact statement order of the pre-actor inline driver (tally, then
  /// telemetry context, then the charge+enqueue) — byte-identical meter and
  /// telemetry streams.
  struct SerialEnv {
    ClassicGhsRun* run;

    void unicast(NodeId u, NodeId to, sim::MsgKind kind, std::uint8_t dtag,
                 std::uint32_t fragment, double reach, GhsMsg msg) {
      run->tally(static_cast<GhsMsgType>(dtag), reach);
      run->net_.meter().set_kind(kind);
      run->net_.meter().set_fragment(fragment);
      run->net_.unicast(u, to, std::move(msg));
    }
    void broadcast(NodeId u, double radius, sim::MsgKind kind,
                   std::uint8_t dtag, std::uint32_t fragment, GhsMsg msg) {
      run->tally(static_cast<GhsMsgType>(dtag), radius);
      run->net_.meter().set_kind(kind);
      run->net_.meter().set_fragment(fragment);
      run->net_.broadcast(u, radius, std::move(msg));
    }
    void defer(const Delivery& d) { run->deferred_.push_back(d); }
    void note(std::uint32_t, std::uint64_t) {}
  };

  /// The replay sink for the distributed path: the engine stages, charges
  /// and contextualizes each effect itself; the driver only keeps its
  /// per-type tally, exactly what SerialEnv::unicast/broadcast do first.
  struct ReplaySink {
    ClassicGhsRun* run;
    void on_send(std::uint8_t dtag, double reach) {
      run->tally(static_cast<GhsMsgType>(dtag), reach);
    }
    void on_step_node(NodeId, std::uint8_t) {}
    void on_note(NodeId, std::uint32_t, std::uint64_t) {}
  };

  MstRunResult run_serial() {
    SerialEnv env{this};
    if (starters_.empty()) {
      for (NodeId u = 0; u < topo_.node_count(); ++u) {
        if (!faulty_ || !net_.faults().crashed(u)) actor_.wakeup(u, env);
      }
    } else {
      for (NodeId u : starters_) {
        if (!faulty_ || !net_.faults().crashed(u)) actor_.wakeup(u, env);
      }
    }
    // Fail-stop epochs (docs/ROBUSTNESS.md): run the 1983 protocol to
    // quiescence; if any crash touched the epoch (a send suppressed, a
    // delivery dropped on a dead receiver, or the crashed set changed), the
    // epoch's state is untrusted — discard it, mark edges to dead neighbors
    // Rejected (the modeled neighbor-timeout failure detector), and restart
    // among the survivors. The final epoch is crash-free by construction, so
    // the original GHS proof applies verbatim to the survivor subgraph.
    // Permanent windows bound the epoch count; the cap is a bug guard.
    std::vector<char> dead = dead_snapshot();
    std::uint64_t activity = crash_activity();
    const std::size_t max_epochs = faulty_ ? topo_.node_count() + 2 : 1;
    while (true) {
      run_epoch(env);
      if (!faulty_) break;
      std::vector<char> now_dead = dead_snapshot();
      const std::uint64_t now_activity = crash_activity();
      if (now_dead == dead && now_activity == activity) break;  // clean epoch
      dead = std::move(now_dead);
      activity = now_activity;
      EMST_ASSERT_MSG(++epochs_ <= max_epochs,
                      "classic GHS exceeded fail-stop epoch cap");
      restart_epoch(env);
    }
    return harvest();
  }

  /// Rank-resident execution (docs/DISTRIBUTED.md §6): the actor is
  /// installed inside the rank processes, the choreography below mirrors
  /// run_serial step for step, and every handler runs in the rank that owns
  /// its receiver — the parent replays the effect ledgers. The fail-stop
  /// epoch logic is unchanged because the crash clock, the suppressed /
  /// dropped counters and the stall detection all stay parent-side.
  MstRunResult run_distributed() {
    ReplaySink sink{this};
    net_.install_actor(actor_, faulty_);
    wakeup_step(sink);
    std::vector<char> dead = dead_snapshot();
    std::uint64_t activity = crash_activity();
    const std::size_t max_epochs = faulty_ ? topo_.node_count() + 2 : 1;
    while (true) {
      run_epoch_distributed(sink);
      if (!faulty_) break;
      std::vector<char> now_dead = dead_snapshot();
      const std::uint64_t now_activity = crash_activity();
      if (now_dead == dead && now_activity == activity) break;  // clean epoch
      dead = std::move(now_dead);
      activity = now_activity;
      EMST_ASSERT_MSG(++epochs_ <= max_epochs,
                      "classic GHS exceeded fail-stop epoch cap");
      rounds_ = 0;  // the round cap is per epoch; epochs_ bounds the restarts
      net_.actor_step(proto::kDistStepRestart, 0, {}, {}, sink);
      restart_wakeups_.clear();
      for (NodeId u = 0; u < topo_.node_count(); ++u) {
        if (!net_.faults().crashed(u)) restart_wakeups_.push_back(u);
      }
      net_.actor_step(proto::kDistStepWakeupAll, 0, {}, restart_wakeups_,
                      sink);
    }
    rank_invocations_ = net_.actor_harvest(actor_);
    return harvest();
  }

  /// Initial wakeups as a choreographed step: the parent computes the
  /// global invocation order (its fault clock owns the crash skips), the
  /// ranks invoke the same set locally via the mirrored clock.
  void wakeup_step(ReplaySink& sink) {
    restart_wakeups_.clear();
    if (starters_.empty()) {
      for (NodeId u = 0; u < topo_.node_count(); ++u) {
        if (!faulty_ || !net_.faults().crashed(u))
          restart_wakeups_.push_back(u);
      }
      net_.actor_step(proto::kDistStepWakeupAll, 0, {}, restart_wakeups_,
                      sink);
    } else {
      for (NodeId u : starters_) {
        if (!faulty_ || !net_.faults().crashed(u))
          restart_wakeups_.push_back(u);
      }
      net_.actor_step(proto::kDistStepWakeupList, 0, starters_,
                      restart_wakeups_, sink);
    }
  }

  /// Drive the protocol until quiescence: nothing in flight and nothing
  /// deferred — or, under faults, a stall: nothing in flight and a round of
  /// redispatching the deferred queue changed nothing (every enabler died
  /// with a crashed node; fault-free GHS always keeps an enabling message in
  /// flight, so the stall exit can only fire in fault mode).
  void run_epoch(SerialEnv& env) {
    while (net_.pending() || !deferred_.empty()) {
      EMST_ASSERT_MSG(++rounds_ <= max_rounds_,
                      "classic GHS exceeded round cap");
      auto batch = net_.collect_round();
      actor_.on_round_start(rounds_);
      // Retry messages deferred in earlier rounds first (they are older).
      auto retry = std::move(deferred_);
      deferred_.clear();
      for (auto& d : retry) actor_.on_message(d, env);
      for (auto& d : batch) actor_.on_message(d, env);
      if (faulty_ && batch.empty() && !net_.pending() &&
          deferred_.size() == retry.size()) {
        return;  // stalled: only re-deferred messages remain
      }
    }
  }

  /// Same loop against the rank-resident actor: the engine executes the
  /// retries and the round batch inside the ranks and replays the ledgers;
  /// the stall condition maps one-to-one onto the round info.
  void run_epoch_distributed(ReplaySink& sink) {
    while (net_.pending() || net_.actor_deferred_size() > 0) {
      EMST_ASSERT_MSG(++rounds_ <= max_rounds_,
                      "classic GHS exceeded round cap");
      const sim::ActorRoundInfo info = net_.actor_collect_round(sink);
      if (faulty_ && info.batch == 0 && !net_.pending() &&
          info.deferred_after == info.retried) {
        return;  // stalled: only re-deferred messages remain
      }
    }
  }

  /// Per-node crashed bitmap at the current fault clock.
  [[nodiscard]] std::vector<char> dead_snapshot() {
    std::vector<char> dead(topo_.node_count(), 0);
    if (!faulty_) return dead;
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      dead[u] = net_.faults().crashed(u) ? 1 : 0;
    }
    return dead;
  }

  /// Crash-related event count so far — any change across an epoch means a
  /// dead node absorbed or suppressed protocol traffic during it.
  [[nodiscard]] std::uint64_t crash_activity() const {
    const sim::FaultStats& s = net_.fault_stats();
    return s.dropped_crashed + s.suppressed;
  }

  /// Serial fail-stop restart: reset the actor (which pre-Rejects edges to
  /// permanently dead neighbors — the failure detector) and wake the
  /// survivors. Temporarily crashed nodes keep their edges Basic; probing
  /// them drops messages, which flags the epoch unclean and forces another
  /// restart after they recover.
  void restart_epoch(SerialEnv& env) {
    deferred_.clear();
    rounds_ = 0;  // the round cap is per epoch; epochs_ bounds the restarts
    actor_.restart(net_.faults());
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      if (!net_.faults().crashed(u)) actor_.wakeup(u, env);
    }
  }

  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const {
    return neighbors_within(topo_, u, radius_);
  }

  void tally(GhsMsgType type, double reach) {
    const auto index = static_cast<std::size_t>(type);
    ++breakdown_.count[index];
    breakdown_.energy[index] += net_.meter().model().cost(reach);
  }

  MstRunResult harvest() {
    using EdgeState = typename Actor::EdgeState;
    MstRunResult result;
    std::uint32_t max_level = 0;
    // Collect Branch slots as endpoint edges: a tree edge appears once per
    // endpoint that marked it Branch (usually both), so sort canonically
    // and drop adjacent endpoint duplicates — no global edge list needed.
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      const typename Actor::NodeCtx& n = actor_.node(u);
      max_level = std::max(max_level, n.level);
      const auto nbs = neighbors(u);
      for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
        if (n.edge_state[i] != EdgeState::kBranch) continue;
        result.tree.push_back(graph::Edge{u, nbs[i].id, nbs[i].w}.canonical());
      }
    }
    graph::sort_edges(result.tree);
    result.tree.erase(
        std::unique(result.tree.begin(), result.tree.end(),
                    [](const graph::Edge& a, const graph::Edge& b) {
                      return a.u == b.u && a.v == b.v;
                    }),
        result.tree.end());
    result.totals = net_.meter().totals();
    result.phases = max_level;
    result.fragments = topo_.node_count() - result.tree.size();
    result.breakdown = breakdown_;
    result.per_node_energy = net_.meter().per_node();
    if (net_.meter().breakdown_enabled()) {
      result.energy_breakdown = net_.meter().breakdown();
      result.breakdown_recorded = true;
    }
    result.telemetry = net_.meter().telemetry();
    result.fault_stats = net_.fault_stats();
    result.epochs = epochs_;
    result.injected_crashes = net_.faults().injected_schedule();
    result.handler_invocations = actor_.invocations();
    result.rank_handler_invocations = rank_invocations_;
    return result;
  }

  const Topo& topo_;
  double radius_;
  MoeStrategy moe_;
  Engine net_;
  Actor actor_;
  std::vector<NodeId> starters_;
  bool faulty_ = false;
  std::vector<Delivery> deferred_;
  std::vector<NodeId> restart_wakeups_;
  std::size_t max_rounds_ = 0;
  std::size_t rounds_ = 0;
  std::size_t epochs_ = 1;
  std::uint64_t rank_invocations_ = 0;
  GhsMessageBreakdown breakdown_;
};

}  // namespace

template <typename Topo>
MstRunResult run_classic_ghs(const Topo& topo,
                             const ClassicGhsOptions& options) {
  if (options.use_reference_engine) {
    return ClassicGhsRun<sim::ReferenceNetwork<GhsMsg, Topo>, Topo>(topo,
                                                                    options)
        .run();
  }
  if (options.ranks > 0) {
    return ClassicGhsRun<sim::DistributedNetwork<GhsMsg, Topo>, Topo>(topo,
                                                                      options)
        .run();
  }
  if (options.threads > 1) {
    return ClassicGhsRun<sim::ShardedNetwork<GhsMsg, Topo>, Topo>(topo, options)
        .run();
  }
  return ClassicGhsRun<sim::Network<GhsMsg, Topo>, Topo>(topo, options).run();
}

template MstRunResult run_classic_ghs<sim::Topology>(const sim::Topology&,
                                                     const ClassicGhsOptions&);
template MstRunResult run_classic_ghs<sim::ImplicitTopology>(
    const sim::ImplicitTopology&, const ClassicGhsOptions&);

}  // namespace emst::ghs
