// Defines the entry point it declares.
#define EMST_NO_DEPRECATE
#include "emst/ghs/classic.hpp"

#include <algorithm>
#include <unordered_map>
#include <variant>

#include "emst/sim/distributed_network.hpp"
#include "emst/sim/engine_factory.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/reference_network.hpp"
#include "emst/sim/sharded_network.hpp"
#include "emst/support/assert.hpp"

namespace emst::ghs {
namespace {

// ---------------------------------------------------------------------------
// Message types (Gallager, Humblet & Spira 1983, §3) — the wire structs and
// their codecs live in the proto layer; fragment names are edge indices of
// the core edge, levels are integers.
// ---------------------------------------------------------------------------

using NodeState = proto::GhsNodeState;
enum class EdgeState : std::uint8_t { kBasic, kBranch, kRejected };

using Connect = proto::GhsConnect;
using Initiate = proto::GhsInitiate;
using Test = proto::GhsTest;
using Accept = proto::GhsAccept;
using Reject = proto::GhsReject;
using Report = proto::GhsReport;
using ChangeRoot = proto::GhsChangeRoot;
using Announce = proto::GhsAnnounce;
using GhsMsg = proto::GhsMsg;

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
constexpr EdgeIndex kNoFragName = static_cast<EdgeIndex>(-1);

// ---------------------------------------------------------------------------
// Per-node protocol state. Edges are addressed by "slot": the position in
// the node's radius-filtered neighbor span (ascending weight), which makes
// "minimum-weight basic edge" a linear scan from slot 0.
// ---------------------------------------------------------------------------

struct NodeCtx {
  NodeState state = NodeState::kSleeping;
  std::uint32_t level = 0;
  EdgeIndex frag = kNoFragName;       // undefined until first Initiate
  std::vector<EdgeState> edge_state;  // per neighbor slot
  std::size_t best_slot = kNoSlot;    // candidate MOE (local slot)
  std::uint64_t best_edge = kInfEdge; // its global edge index
  std::size_t test_slot = kNoSlot;    // slot currently under TEST
  std::size_t in_branch = kNoSlot;    // slot toward the core
  std::uint32_t find_count = 0;
  bool halted = false;
  /// kCachedConfirm: last fragment name each neighbor announced. Names are
  /// globally unique over time (a core edge can core only once), so a cache
  /// hit equal to the node's own name proves the edge internal forever.
  std::unordered_map<NodeId, EdgeIndex> cache;
};

/// The protocol driver, templated on the network engine so the calendar-
/// queue `sim::Network` and the `sim::ReferenceNetwork` oracle execute the
/// EXACT same protocol code — any divergence (accounting, telemetry stream,
/// tree) is an engine bug, not a driver difference. Also templated on the
/// topology backend: fragment names are canonical edge indices, which the
/// implicit backend serves from its edge-rank table (built up front by
/// `prepare_edge_indices`), so the wire traffic is identical either way.
template <typename Engine, typename Topo>
class ClassicGhsRun {
 public:
  ClassicGhsRun(const Topo& topo, const ClassicGhsOptions& options)
      : topo_(topo),
        radius_(options.radius > 0.0 ? options.radius : topo.max_radius()),
        moe_(options.moe),
        net_(sim::make_engine<Engine>(topo, options.pathloss,
                                      /*unbounded_broadcast=*/false,
                                      options.delays, options.faults,
                                      options.telemetry, options.threads,
                                      options.ranks)),
        nodes_(topo.node_count()),
        starters_(options.spontaneous_wakeups),
        faulty_(options.faults.enabled()) {
    EMST_ASSERT(radius_ <= topo.max_radius() * (1.0 + 1e-12));
    // Fail-stop only: the 1983 protocol has no loss recovery, so lossy
    // channels stay unsupported — crashes are survived by epoch restart
    // (docs/ROBUSTNESS.md), losses would need the sync drivers' ARQ.
    EMST_ASSERT_MSG(!options.arq.enabled, "classic GHS has no ARQ layer");
    EMST_ASSERT_MSG(options.faults.loss == 0.0 && !options.faults.use_gilbert,
                    "classic GHS accepts crash-only (fail-stop) fault models; "
                    "message loss needs ARQ recovery (sync GHS / EOPT)");
    if (options.oracle != nullptr) net_.attach_oracle(options.oracle);
    max_rounds_ = options.max_rounds > 0
                      ? options.max_rounds
                      : (50 * topo.node_count() + 1000) *
                            (options.delays.max_extra_delay + 1);
    // Fragment names are edge indices: the materialized backend carries
    // them natively, the implicit one builds its rank table now (no-op for
    // sim::Topology).
    prepare_edge_indices(topo_);
    // Codec hook: the engine measures every message through the proto wire
    // format once the field widths are derived from the topology.
    net_.wire_format().ctx = proto::WireContext::for_topology(
        topo.node_count(), topo.edge_count());
    if (options.track_per_node_energy)
      net_.meter().enable_per_node(topo.node_count());
    if (options.record_breakdown) net_.meter().enable_breakdown();
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      nodes_[u].edge_state.assign(neighbors(u).size(), EdgeState::kBasic);
    }
  }

  MstRunResult run() {
    if (starters_.empty()) {
      for (NodeId u = 0; u < topo_.node_count(); ++u) {
        if (!faulty_ || !net_.faults().crashed(u)) wakeup(u);
      }
    } else {
      for (NodeId u : starters_) {
        if (!faulty_ || !net_.faults().crashed(u)) wakeup(u);
      }
    }
    // Fail-stop epochs (docs/ROBUSTNESS.md): run the 1983 protocol to
    // quiescence; if any crash touched the epoch (a send suppressed, a
    // delivery dropped on a dead receiver, or the crashed set changed), the
    // epoch's state is untrusted — discard it, mark edges to dead neighbors
    // Rejected (the modeled neighbor-timeout failure detector), and restart
    // among the survivors. The final epoch is crash-free by construction, so
    // the original GHS proof applies verbatim to the survivor subgraph.
    // Permanent windows bound the epoch count; the cap is a bug guard.
    std::vector<char> dead = dead_snapshot();
    std::uint64_t activity = crash_activity();
    const std::size_t max_epochs = faulty_ ? topo_.node_count() + 2 : 1;
    while (true) {
      run_epoch();
      if (!faulty_) break;
      std::vector<char> now_dead = dead_snapshot();
      const std::uint64_t now_activity = crash_activity();
      if (now_dead == dead && now_activity == activity) break;  // clean epoch
      dead = std::move(now_dead);
      activity = now_activity;
      EMST_ASSERT_MSG(++epochs_ <= max_epochs,
                      "classic GHS exceeded fail-stop epoch cap");
      restart_epoch();
    }
    return harvest();
  }

 private:
  using Delivery = sim::Delivery<GhsMsg>;

  /// Drive the protocol until quiescence: nothing in flight and nothing
  /// deferred — or, under faults, a stall: nothing in flight and a round of
  /// redispatching the deferred queue changed nothing (every enabler died
  /// with a crashed node; fault-free GHS always keeps an enabling message in
  /// flight, so the stall exit can only fire in fault mode).
  void run_epoch() {
    while (net_.pending() || !deferred_.empty()) {
      EMST_ASSERT_MSG(++rounds_ <= max_rounds_,
                      "classic GHS exceeded round cap");
      auto batch = net_.collect_round();
      // Retry messages deferred in earlier rounds first (they are older).
      auto retry = std::move(deferred_);
      deferred_.clear();
      for (auto& d : retry) dispatch(d);
      for (auto& d : batch) dispatch(d);
      if (faulty_ && batch.empty() && !net_.pending() &&
          deferred_.size() == retry.size()) {
        return;  // stalled: only re-deferred messages remain
      }
    }
  }

  /// Per-node crashed bitmap at the current fault clock.
  [[nodiscard]] std::vector<char> dead_snapshot() {
    std::vector<char> dead(topo_.node_count(), 0);
    if (!faulty_) return dead;
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      dead[u] = net_.faults().crashed(u) ? 1 : 0;
    }
    return dead;
  }

  /// Crash-related event count so far — any change across an epoch means a
  /// dead node absorbed or suppressed protocol traffic during it.
  [[nodiscard]] std::uint64_t crash_activity() const {
    const sim::FaultStats& s = net_.fault_stats();
    return s.dropped_crashed + s.suppressed;
  }

  /// Discard all protocol state and start over among the survivors. Edges to
  /// permanently dead neighbors are marked Rejected up front — that is the
  /// failure detector: after the stall timeout every survivor knows which
  /// neighbors are gone and runs plain GHS on the survivor subgraph.
  /// Temporarily crashed nodes keep their edges Basic; probing them drops
  /// messages, which flags the epoch unclean and forces another restart
  /// after they recover.
  void restart_epoch() {
    deferred_.clear();
    rounds_ = 0;  // the round cap is per epoch; epochs_ bounds the restarts
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      NodeCtx& n = nodes_[u];
      const auto nbs = neighbors(u);
      n = NodeCtx{};
      n.edge_state.assign(nbs.size(), EdgeState::kBasic);
      for (std::size_t i = 0; i < nbs.size(); ++i) {
        if (net_.faults().crashed_forever(nbs[i].id))
          n.edge_state[i] = EdgeState::kRejected;
      }
    }
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      if (!net_.faults().crashed(u)) wakeup(u);
    }
  }

  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const {
    return neighbors_within(topo_, u, radius_);
  }

  [[nodiscard]] std::size_t slot_of(NodeId u, NodeId v) const {
    return neighbor_slot(topo_, u, v);
  }

  [[nodiscard]] static GhsMsgType type_of(const GhsMsg& msg) {
    return proto::type_of(msg);
  }

  void tally(GhsMsgType type, double reach) {
    const auto index = static_cast<std::size_t>(type);
    ++breakdown_.count[index];
    breakdown_.energy[index] += net_.meter().model().cost(reach);
  }

  void send(NodeId u, std::size_t slot, GhsMsg msg) {
    const GhsMsgType type = type_of(msg);
    tally(type, neighbors(u)[slot].w);
    // Telemetry context rides on the meter: wire type + sender's fragment
    // name (a core-edge index; kNoFragName == kNoEventNode, so unnamed
    // nodes emit no fragment field).
    net_.meter().set_kind(to_msg_kind(type));
    net_.meter().set_fragment(nodes_[u].frag);
    net_.unicast(u, neighbors(u)[slot].id, std::move(msg));
  }

  void defer(const Delivery& d) { deferred_.push_back(d); }

  // --- GHS procedures (numbered as in the 1983 paper) ---------------------

  /// (2) Spontaneous wakeup: mark the minimum-weight edge Branch and send
  /// CONNECT(0) over it. Isolated nodes halt immediately. After a fail-stop
  /// restart, edges to dead neighbors are pre-Rejected, so the minimum edge
  /// is the cheapest surviving one (slot 0 in the fault-free run).
  void wakeup(NodeId u) {
    NodeCtx& n = nodes_[u];
    if (n.state != NodeState::kSleeping) return;
    n.state = NodeState::kFound;
    n.level = 0;
    n.find_count = 0;
    std::size_t first = kNoSlot;
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (n.edge_state[i] == EdgeState::kBasic) {
        first = i;
        break;
      }
    }
    if (first == kNoSlot) {
      n.halted = true;  // isolated node (or all neighbors dead)
      return;
    }
    n.edge_state[first] = EdgeState::kBranch;
    send(u, first, Connect{0});
  }

  /// (3) Receiving CONNECT(L) on edge j.
  void on_connect(NodeId u, std::size_t j, const Connect& m, const Delivery& d) {
    NodeCtx& n = nodes_[u];
    if (m.level < n.level) {
      // Absorb the lower-level fragment.
      n.edge_state[j] = EdgeState::kBranch;
      send(u, j, Initiate{n.level, n.frag, n.state});
      if (n.state == NodeState::kFind) ++n.find_count;
    } else if (n.edge_state[j] == EdgeState::kBasic) {
      defer(d);  // equal level but j not yet known to be the mutual MOE
    } else {
      // Merge: j is the core of the new fragment, named by its edge index.
      const EdgeIndex core = neighbors(u)[j].edge_index;
      send(u, j, Initiate{n.level + 1, core, NodeState::kFind});
    }
  }

  /// (4) Receiving INITIATE(L, F, S) on edge j.
  void on_initiate(NodeId u, std::size_t j, const Initiate& m) {
    NodeCtx& n = nodes_[u];
    n.level = m.level;
    const bool renamed = n.frag != m.frag;
    n.frag = m.frag;
    // §V-A modification: a node whose fragment name changed announces it to
    // its whole neighbourhood with one local broadcast.
    if (moe_ == MoeStrategy::kCachedConfirm && renamed) {
      tally(GhsMsgType::kAnnounce, radius_);
      net_.meter().set_kind(sim::MsgKind::kAnnounce);
      net_.meter().set_fragment(m.frag);
      net_.broadcast(u, radius_, Announce{m.frag});
    }
    n.state = m.state;
    n.in_branch = j;
    n.best_slot = kNoSlot;
    n.best_edge = kInfEdge;
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (i == j || n.edge_state[i] != EdgeState::kBranch) continue;
      send(u, i, Initiate{m.level, m.frag, m.state});
      if (m.state == NodeState::kFind) ++n.find_count;
    }
    if (m.state == NodeState::kFind) test(u);
  }

  /// (5) Procedure test: probe the minimum-weight basic edge. In cached
  /// mode, edges whose neighbour announced the node's own fragment name are
  /// rejected for free; the first remaining candidate is still confirmed
  /// with one TEST (the cache can be stale in the other direction only).
  void test(NodeId u) {
    NodeCtx& n = nodes_[u];
    const auto nbs = neighbors(u);
    for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
      if (n.edge_state[i] != EdgeState::kBasic) continue;
      if (moe_ == MoeStrategy::kCachedConfirm) {
        const auto hit = n.cache.find(nbs[i].id);
        if (hit != n.cache.end() && hit->second == n.frag) {
          n.edge_state[i] = EdgeState::kRejected;  // proven internal, free
          continue;
        }
      }
      n.test_slot = i;
      send(u, i, Test{n.level, n.frag});
      return;
    }
    n.test_slot = kNoSlot;
    report(u);
  }

  /// (6) Receiving TEST(L, F) on edge j.
  void on_test(NodeId u, std::size_t j, const Test& m, const Delivery& d) {
    NodeCtx& n = nodes_[u];
    if (m.level > n.level) {
      defer(d);
      return;
    }
    if (m.frag != n.frag) {
      send(u, j, Accept{});
      return;
    }
    // Same fragment: internal edge.
    if (n.edge_state[j] == EdgeState::kBasic) n.edge_state[j] = EdgeState::kRejected;
    if (n.test_slot != j) {
      send(u, j, Reject{});
    } else {
      test(u);  // the edge we were testing is internal; try the next
    }
  }

  /// (7) Receiving ACCEPT on edge j.
  void on_accept(NodeId u, std::size_t j) {
    NodeCtx& n = nodes_[u];
    n.test_slot = kNoSlot;
    const std::uint64_t idx = neighbors(u)[j].edge_index;
    if (idx < n.best_edge) {
      n.best_edge = idx;
      n.best_slot = j;
    }
    report(u);
  }

  /// (8) Receiving REJECT on edge j.
  void on_reject(NodeId u, std::size_t j) {
    NodeCtx& n = nodes_[u];
    if (n.edge_state[j] == EdgeState::kBasic) n.edge_state[j] = EdgeState::kRejected;
    test(u);
  }

  /// (9) Procedure report.
  void report(NodeId u) {
    NodeCtx& n = nodes_[u];
    if (n.find_count == 0 && n.test_slot == kNoSlot) {
      n.state = NodeState::kFound;
      EMST_ASSERT(n.in_branch != kNoSlot);
      send(u, n.in_branch, Report{n.best_edge});
    }
  }

  /// (10) Receiving REPORT(w) on edge j.
  void on_report(NodeId u, std::size_t j, const Report& m, const Delivery& d) {
    NodeCtx& n = nodes_[u];
    if (j != n.in_branch) {
      EMST_ASSERT(n.find_count > 0);
      --n.find_count;
      if (m.best < n.best_edge) {
        n.best_edge = m.best;
        n.best_slot = j;
      }
      report(u);
      return;
    }
    // Report arriving over the core edge.
    if (n.state == NodeState::kFind) {
      defer(d);
    } else if (m.best > n.best_edge) {
      change_root(u);
    } else if (m.best == kInfEdge && n.best_edge == kInfEdge) {
      n.halted = true;  // the whole fragment has no outgoing edge: done
    }
    // else: the other core node owns the fragment MOE and will change root.
  }

  /// (11) Procedure change-root.
  void change_root(NodeId u) {
    NodeCtx& n = nodes_[u];
    EMST_ASSERT(n.best_slot != kNoSlot);
    if (n.edge_state[n.best_slot] == EdgeState::kBranch) {
      send(u, n.best_slot, ChangeRoot{});
    } else {
      send(u, n.best_slot, Connect{n.level});
      n.edge_state[n.best_slot] = EdgeState::kBranch;
    }
  }

  void dispatch(const Delivery& d) {
    const NodeId u = d.to;
    const std::size_t j = slot_of(u, d.from);
    // A sleeping node is awakened by any incoming message (all nodes wake in
    // round 0 here, but keep the guard for partial-start configurations).
    if (nodes_[u].state == NodeState::kSleeping) wakeup(u);
    std::visit(
        [&](const auto& msg) {
          using T = std::decay_t<decltype(msg)>;
          if constexpr (std::is_same_v<T, Connect>) {
            on_connect(u, j, msg, d);
          } else if constexpr (std::is_same_v<T, Initiate>) {
            on_initiate(u, j, msg);
          } else if constexpr (std::is_same_v<T, Test>) {
            on_test(u, j, msg, d);
          } else if constexpr (std::is_same_v<T, Accept>) {
            on_accept(u, j);
          } else if constexpr (std::is_same_v<T, Reject>) {
            on_reject(u, j);
          } else if constexpr (std::is_same_v<T, Report>) {
            on_report(u, j, msg, d);
          } else if constexpr (std::is_same_v<T, Announce>) {
            nodes_[u].cache[d.from] = msg.frag;
          } else {
            change_root(u);
          }
        },
        d.msg);
  }

  MstRunResult harvest() {
    MstRunResult result;
    std::uint32_t max_level = 0;
    // Collect Branch slots as endpoint edges: a tree edge appears once per
    // endpoint that marked it Branch (usually both), so sort canonically
    // and drop adjacent endpoint duplicates — no global edge list needed.
    for (NodeId u = 0; u < topo_.node_count(); ++u) {
      const NodeCtx& n = nodes_[u];
      max_level = std::max(max_level, n.level);
      const auto nbs = neighbors(u);
      for (std::size_t i = 0; i < n.edge_state.size(); ++i) {
        if (n.edge_state[i] != EdgeState::kBranch) continue;
        result.tree.push_back(graph::Edge{u, nbs[i].id, nbs[i].w}.canonical());
      }
    }
    graph::sort_edges(result.tree);
    result.tree.erase(
        std::unique(result.tree.begin(), result.tree.end(),
                    [](const graph::Edge& a, const graph::Edge& b) {
                      return a.u == b.u && a.v == b.v;
                    }),
        result.tree.end());
    result.totals = net_.meter().totals();
    result.phases = max_level;
    result.fragments = topo_.node_count() - result.tree.size();
    result.breakdown = breakdown_;
    result.per_node_energy = net_.meter().per_node();
    if (net_.meter().breakdown_enabled()) {
      result.energy_breakdown = net_.meter().breakdown();
      result.breakdown_recorded = true;
    }
    result.telemetry = net_.meter().telemetry();
    result.fault_stats = net_.fault_stats();
    result.epochs = epochs_;
    result.injected_crashes = net_.faults().injected_schedule();
    return result;
  }

  const Topo& topo_;
  double radius_;
  MoeStrategy moe_;
  Engine net_;
  std::vector<NodeCtx> nodes_;
  std::vector<NodeId> starters_;
  bool faulty_ = false;
  std::vector<Delivery> deferred_;
  std::size_t max_rounds_ = 0;
  std::size_t rounds_ = 0;
  std::size_t epochs_ = 1;
  GhsMessageBreakdown breakdown_;
};

}  // namespace

template <typename Topo>
MstRunResult run_classic_ghs(const Topo& topo,
                             const ClassicGhsOptions& options) {
  if (options.use_reference_engine) {
    return ClassicGhsRun<sim::ReferenceNetwork<GhsMsg, Topo>, Topo>(topo,
                                                                    options)
        .run();
  }
  if (options.ranks > 0) {
    return ClassicGhsRun<sim::DistributedNetwork<GhsMsg, Topo>, Topo>(topo,
                                                                      options)
        .run();
  }
  if (options.threads > 1) {
    return ClassicGhsRun<sim::ShardedNetwork<GhsMsg, Topo>, Topo>(topo, options)
        .run();
  }
  return ClassicGhsRun<sim::Network<GhsMsg, Topo>, Topo>(topo, options).run();
}

template MstRunResult run_classic_ghs<sim::Topology>(const sim::Topology&,
                                                     const ClassicGhsOptions&);
template MstRunResult run_classic_ghs<sim::ImplicitTopology>(
    const sim::ImplicitTopology&, const ClassicGhsOptions&);

}  // namespace emst::ghs
