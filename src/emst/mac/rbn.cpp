#include "emst/mac/rbn.hpp"

#include <algorithm>
#include <cmath>

#include "emst/ghs/common.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::mac {
namespace {

/// A message with possibly many outstanding receivers (1 for a unicast,
/// the whole neighbourhood for a local broadcast).
struct PendingItem {
  NodeId from = 0;
  std::vector<NodeId> receivers;  // still waiting for a clean copy
  double power_radius = 0.0;
};

struct Engine {
  const sim::Topology& topo;
  RbnOptions options;
  double range;

  RbnStats run(std::vector<PendingItem> pending) {
    RbnStats stats;
    stats.delivered = 0;
    for (const PendingItem& item : pending)
      stats.collision_free_energy += options.pathloss.cost(item.power_radius);
    const std::size_t total_items = pending.size();
    if (pending.empty()) return stats;

    // Interference degree Δ: the most senders that can collide at any
    // receiver (computed once, over the initial batch — conservative).
    std::size_t delta = 1;
    {
      std::vector<bool> is_sender(topo.node_count(), false);
      for (const PendingItem& item : pending) is_sender[item.from] = true;
      for (const PendingItem& item : pending) {
        for (const NodeId v : item.receivers) {
          std::size_t contenders = 0;
          for (const NodeId w : topo.nodes_within(v, range)) {
            if (is_sender[w]) ++contenders;
          }
          if (is_sender[v]) ++contenders;  // a receiver that also sends
          delta = std::max(delta, contenders);
        }
      }
    }
    const double p = options.tx_probability > 0.0
                         ? options.tx_probability
                         : 1.0 / (static_cast<double>(delta) + 1.0);
    const std::size_t slot_cap =
        options.max_slots > 0
            ? options.max_slots
            : 64 * (delta + 1) *
                  (static_cast<std::size_t>(
                       std::log2(static_cast<double>(total_items) + 2.0)) +
                   4);

    support::Rng rng(options.seed);
    std::vector<std::size_t> transmitting;  // indices into pending
    while (!pending.empty()) {
      EMST_ASSERT_MSG(++stats.slots <= slot_cap,
                      "RBN contention did not drain; tx probability mis-tuned");
      transmitting.clear();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (rng.uniform() < p) transmitting.push_back(i);
      }
      if (transmitting.empty()) continue;
      stats.attempts += transmitting.size();
      for (const std::size_t i : transmitting)
        stats.energy += options.pathloss.cost(pending[i].power_radius);

      // Deliver: receiver v of item i hears it iff no OTHER transmitter is
      // within the interference range of v.
      for (const std::size_t i : transmitting) {
        PendingItem& item = pending[i];
        auto collision_at = [&](NodeId v) {
          for (const std::size_t j : transmitting) {
            if (j == i) continue;
            if (topo.distance(pending[j].from, v) <= range) return true;
          }
          return false;
        };
        // Under Tx-Rx the sender's own neighbourhood must be clear too (a
        // transmitting sender cannot simultaneously arbitrate nearby
        // traffic), and a receiver that is itself transmitting hears nothing.
        const bool sender_clear =
            options.rule == InterferenceRule::kRbn || !collision_at(item.from);
        auto receiver_busy = [&](NodeId v) {
          if (options.rule == InterferenceRule::kRbn) return false;
          for (const std::size_t j : transmitting) {
            if (pending[j].from == v) return true;
          }
          return false;
        };
        item.receivers.erase(
            std::remove_if(item.receivers.begin(), item.receivers.end(),
                           [&](NodeId v) {
                             // The copy must also actually reach v.
                             return topo.distance(item.from, v) <=
                                        item.power_radius &&
                                    sender_clear && !collision_at(v) &&
                                    !receiver_busy(v);
                           }),
            item.receivers.end());
      }
      // Drop completed items (iterate indices descending to keep them valid).
      std::sort(transmitting.begin(), transmitting.end(), std::greater<>());
      for (const std::size_t i : transmitting) {
        if (pending[i].receivers.empty()) {
          ++stats.delivered;
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }
    EMST_ASSERT(stats.delivered == total_items);
    return stats;
  }
};

}  // namespace

RbnStats resolve_contention(const sim::Topology& topo,
                            std::vector<Transmission> pending,
                            const RbnOptions& options) {
  Engine engine{topo, options,
                options.interference_range > 0.0 ? options.interference_range
                                                 : topo.max_radius()};
  std::vector<PendingItem> items;
  items.reserve(pending.size());
  for (const Transmission& t : pending) {
    EMST_ASSERT(t.from != t.to);
    EMST_ASSERT_MSG(topo.distance(t.from, t.to) <= t.power_radius * (1 + 1e-12),
                    "transmission power cannot reach the receiver");
    items.push_back({t.from, {t.to}, t.power_radius});
  }
  return engine.run(std::move(items));
}

RbnStats replay_log(const sim::Topology& topo, const ghs::TxLog& log,
                    const RbnOptions& options) {
  Engine engine{topo, options,
                options.interference_range > 0.0 ? options.interference_range
                                                 : topo.max_radius()};
  RbnStats total;
  std::uint64_t batch_index = 0;
  for (const ghs::TxBatch& batch : log) {
    std::vector<PendingItem> items;
    items.reserve(batch.size());
    for (const ghs::TxRecord& record : batch) {
      PendingItem item;
      item.from = record.from;
      item.power_radius = record.power_radius;
      if (record.is_broadcast) {
        for (const graph::Neighbor& nb :
             ghs::neighbors_within(topo, record.from, record.power_radius)) {
          item.receivers.push_back(nb.id);
        }
        if (item.receivers.empty()) continue;  // nobody in range: free slot
      } else {
        item.receivers.push_back(record.to);
      }
      items.push_back(std::move(item));
    }
    // Per-batch seed derivation keeps the replay deterministic while the
    // batches remain independent.
    Engine batch_engine = engine;
    batch_engine.options.seed =
        support::Rng::stream_seed(options.seed, batch_index++);
    const RbnStats stats = batch_engine.run(std::move(items));
    total.slots += stats.slots;
    total.attempts += stats.attempts;
    total.delivered += stats.delivered;
    total.energy += stats.energy;
    total.collision_free_energy += stats.collision_free_energy;
  }
  return total;
}

RbnStats announcement_round_under_rbn(const sim::Topology& topo, double radius,
                                      const RbnOptions& options) {
  Engine engine{topo, options,
                options.interference_range > 0.0 ? options.interference_range
                                                 : topo.max_radius()};
  std::vector<PendingItem> items;
  items.reserve(topo.node_count());
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    PendingItem item;
    item.from = u;
    item.power_radius = radius;
    for (const graph::Neighbor& nb : ghs::neighbors_within(topo, u, radius))
      item.receivers.push_back(nb.id);
    if (!item.receivers.empty()) items.push_back(std::move(item));
  }
  return engine.run(std::move(items));
}

}  // namespace emst::mac
