// Radio Broadcast Network (RBN) contention resolution (paper §II, §VIII).
//
// The main algorithms assume collision-free rounds ("for simplicity, we
// assume that there are no collisions"); §VIII argues that combining them
// with the contention-resolution protocol of [15] costs only a constant
// factor in energy and an O(Δ log n)-ish factor in time. This module
// implements that protocol so the claim can be measured instead of assumed:
//
//   - a set of logical transmissions is pending;
//   - time proceeds in slots; each pending sender transmits in a slot with
//     probability 1/(Δ+1), where Δ bounds the interference neighbourhood;
//   - under the RBN interference rule, u's transmission is received by v iff
//     no other node within v's interference range transmits in that slot;
//   - every attempt (successful or not) pays the sender's full transmission
//     energy.
//
// With p = 1/(Δ+1), a given attempt succeeds with probability ≈ (1-p)^Δ ≈
// 1/e, so the expected attempts per delivered message — hence the energy
// blow-up — is the constant e ≈ 2.72, while delivering everything takes
// Θ(Δ·log n) slots: exactly the [15] trade the paper quotes.
#pragma once

#include <cstdint>
#include <vector>

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"
#include "emst/sim/topology.hpp"

namespace emst::mac {

using NodeId = sim::NodeId;

/// One logical message to be delivered under contention.
struct Transmission {
  NodeId from = 0;
  NodeId to = 0;
  /// Power radius of the attempt (= d(from,to) for a unicast, the broadcast
  /// radius for a local broadcast); each attempt costs radius^α.
  double power_radius = 0.0;
};

/// Interference rule (§II mentions both).
enum class InterferenceRule {
  /// Radio Broadcast Network: u→v fails iff another node within range of
  /// the RECEIVER v transmits in the same slot.
  kRbn,
  /// Tx-Rx (distance-2 matching [2]): additionally, a sender cannot receive
  /// while transmitting, and u→v also fails if another transmitter is within
  /// range of the SENDER u (both endpoints must be clear).
  kTxRx,
};

struct RbnOptions {
  std::uint64_t seed = 0xbadc0ffeULL;
  /// Per-slot transmission probability; 0 = automatic 1/(Δ+1) with Δ = the
  /// maximum interference degree of the pending senders.
  double tx_probability = 0.0;
  /// Interference range; 0 = the topology's max radius (conservative RBN).
  double interference_range = 0.0;
  InterferenceRule rule = InterferenceRule::kRbn;
  geometry::PathLoss pathloss{};
  std::size_t max_slots = 0;  ///< 0 = automatic (64·(Δ+1)·(log₂ m + 4))
};

struct RbnStats {
  std::uint64_t slots = 0;       ///< time to drain the batch
  std::uint64_t attempts = 0;    ///< total transmissions attempted
  std::uint64_t delivered = 0;   ///< messages successfully received
  double energy = 0.0;           ///< Σ radius^α over ALL attempts
  double collision_free_energy = 0.0;  ///< Σ radius^α paid once per message
  /// The §VIII headline: energy under contention / collision-free energy.
  [[nodiscard]] double energy_blowup() const {
    return collision_free_energy > 0.0 ? energy / collision_free_energy : 1.0;
  }
};

/// Resolve one batch of simultaneous transmissions under the RBN rule.
/// Every message is eventually delivered (aborts on the slot cap, which
/// indicates a mis-tuned probability).
[[nodiscard]] RbnStats resolve_contention(const sim::Topology& topo,
                                          std::vector<Transmission> pending,
                                          const RbnOptions& options = {});

/// Convenience workload: the modified-GHS announcement round (every node
/// local-broadcasts once to all neighbours within `radius`) resolved under
/// RBN. A broadcast counts as delivered when ALL its neighbours have
/// received a collision-free copy (retransmit until the last one has).
[[nodiscard]] RbnStats announcement_round_under_rbn(const sim::Topology& topo,
                                                    double radius,
                                                    const RbnOptions& options = {});

/// Replay a whole protocol run's transmission log (one RBN resolution per
/// batch, summed) — the END-TO-END §VIII measurement for an MST
/// construction: collect the log with SyncGhsOptions::transmission_log,
/// then replay it here. Broadcast records deliver to every neighbour within
/// their power radius.
[[nodiscard]] RbnStats replay_log(const sim::Topology& topo,
                                  const ghs::TxLog& log,
                                  const RbnOptions& options = {});

}  // namespace emst::mac
