// Minimal SVG rendering of deployments, trees, and percolation cell fields —
// regenerates the paper's qualitative figures (Fig 1's giant-component
// picture, tree comparisons) as standalone .svg files with no external
// dependency.
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"
#include "emst/percolation/cells.hpp"

namespace emst::viz {

/// Drawing surface mapping the unit square to a pixel viewport (y flipped so
/// the origin is bottom-left, as in the paper's figures).
class SvgCanvas {
 public:
  explicit SvgCanvas(double size_px = 800.0, double margin_px = 10.0);

  /// One dot per point.
  void draw_points(std::span<const geometry::Point2> points, double radius_px,
                   const std::string& fill);

  /// A subset of points (by index), e.g. the giant component's members.
  void draw_point_subset(std::span<const geometry::Point2> points,
                         std::span<const std::size_t> indices, double radius_px,
                         const std::string& fill);

  /// One line segment per edge.
  void draw_edges(std::span<const geometry::Point2> points,
                  const std::vector<graph::Edge>& edges, double width_px,
                  const std::string& stroke);

  /// Cell field backdrop: good cells in `good_fill`, occupied-but-not-good
  /// in `occupied_fill`, empty cells unpainted.
  void draw_cell_field(const percolation::CellField& field,
                       const std::string& good_fill,
                       const std::string& occupied_fill);

  /// Text label (SVG coordinates are handled internally; pos in unit square).
  void draw_label(geometry::Point2 pos, const std::string& text,
                  double font_px = 14.0, const std::string& fill = "#333");

  /// Number of shape elements queued so far (for tests).
  [[nodiscard]] std::size_t element_count() const noexcept {
    return body_.size();
  }

  void write(std::ostream& os) const;
  /// Write to a file; returns false (with a warning) on I/O failure.
  bool save(const std::string& path) const;

 private:
  [[nodiscard]] double px(double x) const noexcept;
  [[nodiscard]] double py(double y) const noexcept;

  double size_;
  double margin_;
  std::vector<std::string> body_;
};

}  // namespace emst::viz
