#include "emst/viz/svg.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "emst/support/assert.hpp"

namespace emst::viz {
namespace {

std::string fmt(const char* pattern, auto... args) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), pattern, args...);
  return buffer;
}

}  // namespace

SvgCanvas::SvgCanvas(double size_px, double margin_px)
    : size_(size_px), margin_(margin_px) {
  EMST_ASSERT(size_px > 2.0 * margin_px);
}

double SvgCanvas::px(double x) const noexcept {
  return margin_ + x * (size_ - 2.0 * margin_);
}

double SvgCanvas::py(double y) const noexcept {
  return size_ - margin_ - y * (size_ - 2.0 * margin_);  // flip y
}

void SvgCanvas::draw_points(std::span<const geometry::Point2> points,
                            double radius_px, const std::string& fill) {
  for (const geometry::Point2& p : points) {
    body_.push_back(fmt(R"(<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>)",
                        px(p.x), py(p.y), radius_px, fill.c_str()));
  }
}

void SvgCanvas::draw_point_subset(std::span<const geometry::Point2> points,
                                  std::span<const std::size_t> indices,
                                  double radius_px, const std::string& fill) {
  for (const std::size_t i : indices) {
    EMST_ASSERT(i < points.size());
    body_.push_back(fmt(R"(<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>)",
                        px(points[i].x), py(points[i].y), radius_px,
                        fill.c_str()));
  }
}

void SvgCanvas::draw_edges(std::span<const geometry::Point2> points,
                           const std::vector<graph::Edge>& edges,
                           double width_px, const std::string& stroke) {
  for (const graph::Edge& e : edges) {
    EMST_ASSERT(e.u < points.size() && e.v < points.size());
    body_.push_back(
        fmt(R"(<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>)",
            px(points[e.u].x), py(points[e.u].y), px(points[e.v].x),
            py(points[e.v].y), stroke.c_str(), width_px));
  }
}

void SvgCanvas::draw_cell_field(const percolation::CellField& field,
                                const std::string& good_fill,
                                const std::string& occupied_fill) {
  const double cell = field.cell_size();
  for (std::size_t cy = 0; cy < field.side(); ++cy) {
    for (std::size_t cx = 0; cx < field.side(); ++cx) {
      const bool good = field.good(cx, cy);
      if (!good && !field.occupied(cx, cy)) continue;
      const double x0 = static_cast<double>(cx) * cell;
      const double y0 = static_cast<double>(cy) * cell;
      body_.push_back(
          fmt(R"(<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>)",
              px(x0), py(y0 + cell), px(x0 + cell) - px(x0),
              py(y0) - py(y0 + cell),
              good ? good_fill.c_str() : occupied_fill.c_str()));
    }
  }
}

void SvgCanvas::draw_label(geometry::Point2 pos, const std::string& text,
                           double font_px, const std::string& fill) {
  std::string escaped;
  for (const char ch : text) {
    switch (ch) {
      case '<': escaped += "&lt;"; break;
      case '>': escaped += "&gt;"; break;
      case '&': escaped += "&amp;"; break;
      default: escaped += ch;
    }
  }
  body_.push_back(
      fmt(R"(<text x="%.2f" y="%.2f" font-size="%.1f" fill="%s" font-family="sans-serif">%s</text>)",
          px(pos.x), py(pos.y), font_px, fill.c_str(), escaped.c_str()));
}

void SvgCanvas::write(std::ostream& os) const {
  os << fmt(R"(<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">)",
            size_, size_, size_, size_)
     << '\n';
  os << R"(<rect width="100%" height="100%" fill="white"/>)" << '\n';
  for (const std::string& element : body_) os << element << '\n';
  os << "</svg>\n";
}

bool SvgCanvas::save(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream file(path);
  if (!file) {
    std::cerr << "emst: warning: cannot write SVG to " << path << '\n';
    return false;
  }
  write(file);
  return true;
}

}  // namespace emst::viz
