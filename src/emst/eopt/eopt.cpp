// EOPT composes the other drivers internally (stage 2 runs sync GHS on
// the giant); internal cross-calls are not deprecated usage.
#define EMST_NO_DEPRECATE
#include "emst/eopt/eopt.hpp"

#include <algorithm>
#include <unordered_map>

#include "emst/rgg/radii.hpp"
#include "emst/support/assert.hpp"

namespace emst::eopt {

sim::Topology eopt_topology(std::vector<geometry::Point2> points,
                            const EoptOptions& options) {
  const std::size_t n = points.size();
  EMST_ASSERT(n >= 2);
  const double r2 = rgg::connectivity_radius(n, options.step2_factor);
  return sim::Topology(std::move(points), r2);
}

sim::ImplicitTopology eopt_implicit_topology(
    std::vector<geometry::Point2> points, const EoptOptions& options) {
  const std::size_t n = points.size();
  EMST_ASSERT(n >= 2);
  const double r2 = rgg::connectivity_radius(n, options.step2_factor);
  return sim::ImplicitTopology(std::move(points), r2);
}

template <typename Topo>
EoptResult run_eopt(const Topo& topo, const EoptOptions& options,
                    const ghs::FragmentForest* seed) {
  const std::size_t n = topo.node_count();
  EMST_ASSERT(n >= 2);
  EoptResult result;
  result.radius1 = rgg::percolation_radius(n, options.step1_factor);
  result.radius2 = topo.max_radius();
  // At tiny n the percolation radius formula exceeds the connectivity
  // radius (√(1/n) shrinks slower than √(ln n/n) only for ln n > (c₁/c₂)²);
  // clamp so Step 1 degenerates gracefully into a single full-radius run.
  result.radius1 = std::min(result.radius1, result.radius2);

  // ONE meter carries the whole run. Stages execute under phase scopes, so
  // the per-phase × per-kind breakdown matrix is the single source of truth
  // for the Thm 5.3 step shares — `phase_total` row sums, not per-stage
  // snapshot subtraction, so the breakdown and the total cannot disagree.
  sim::EnergyMeter total(options.pathloss);
  total.enable_breakdown();
  if (options.track_per_node_energy) total.enable_per_node(n);
  total.attach_telemetry(options.telemetry);

  // One fault session for the whole run: Step 1, the census and Step 2
  // share the loss RNG, burst states and crash clock (docs/ROBUSTNESS.md).
  sim::FaultInjector fault_session(options.faults);
  const bool faulty = fault_session.enabled() || options.arq.enabled;

  // --- Step 1: modified GHS in the percolation regime --------------------
  ghs::SyncGhsOptions step1;
  static_cast<sim::RunConfig&>(step1) = options;  // pathloss/faults/arq/...
  step1.radius = result.radius1;
  step1.neighbor_cache = options.neighbor_cache;
  step1.announce_min_power = options.announce_min_power;
  step1.announce_initial = true;
  if (faulty) step1.fault_session = &fault_session;
  const std::optional<ghs::FragmentForest> initial =
      seed != nullptr ? std::optional<ghs::FragmentForest>(*seed)
                      : std::nullopt;
  ghs::SyncGhsResult stage1;
  {
    const auto scope = total.scoped_phase(sim::PhaseTag::kStep1);
    stage1 = ghs::run_sync_ghs(topo, step1, initial, &total);
  }
  result.step1_fragments = stage1.run.fragments;
  result.step1_phases = stage1.run.phases;

  // --- Census: each fragment learns its size -----------------------------
  sim::ArqLink census_link(&fault_session, options.arq);
  std::vector<std::size_t> sizes;
  {
    const auto scope = total.scoped_phase(sim::PhaseTag::kCensus);
    sizes = ghs::fragment_census(topo, stage1.final_forest, total,
                                 faulty ? &census_link : nullptr);
  }

  // Fragments above β·ln²n declare themselves giant. Theorem 5.2 says WHP
  // exactly one does; if several exceed the threshold (possible at small n
  // or an aggressive β), only the largest stays passive — two mutually
  // passive fragments would never connect to each other.
  const double threshold = rgg::giant_threshold(n, options.beta);
  std::unordered_map<ghs::NodeId, std::size_t> frag_size;
  for (ghs::NodeId u = 0; u < n; ++u)
    frag_size[stage1.final_forest.leader[u]] = sizes[u];
  ghs::NodeId giant = graph::kNoNode;
  for (const auto& [leader, size] : frag_size) {
    if (static_cast<double>(size) <= threshold) continue;
    if (giant == graph::kNoNode || size > frag_size[giant] ||
        (size == frag_size[giant] && leader < giant)) {
      giant = leader;
    }
  }
  result.giant_found = giant != graph::kNoNode;
  result.giant_size = result.giant_found ? frag_size[giant] : 0;

  // --- Step 2: modified GHS in the connectivity regime -------------------
  ghs::SyncGhsOptions step2;
  static_cast<sim::RunConfig&>(step2) = options;
  step2.radius = result.radius2;
  step2.neighbor_cache = options.neighbor_cache;
  step2.announce_min_power = options.announce_min_power;
  // Caches were filled at r₁; the radius grew, so everyone re-announces once.
  step2.announce_initial = true;
  if (faulty) step2.fault_session = &fault_session;
  if (options.giant_passive && result.giant_found)
    step2.passive_fragments.push_back(giant);
  step2.retain_passive_id = options.giant_keeps_id;
  ghs::SyncGhsResult stage2;
  {
    const auto scope = total.scoped_phase(sim::PhaseTag::kStep2);
    stage2 = ghs::run_sync_ghs(topo, step2, stage1.final_forest, &total);
  }
  result.step2_phases = stage2.run.phases;

  // Stage shares from the one matrix every charge landed in exactly once.
  const sim::EnergyBreakdown& matrix = total.breakdown();
  result.step1 = matrix.phase_total(sim::PhaseTag::kStep1);
  result.census = matrix.phase_total(sim::PhaseTag::kCensus);
  result.step2 = matrix.phase_total(sim::PhaseTag::kStep2);

  result.run.tree = stage2.run.tree;
  result.run.totals = total.totals();
  result.run.phases = stage1.run.phases + stage2.run.phases;
  result.run.fragments = stage2.run.fragments;
  result.run.energy_breakdown = matrix;
  result.run.breakdown_recorded = true;
  result.run.telemetry = total.telemetry();
  result.arq = stage1.arq;
  result.arq += census_link.stats();
  result.arq += stage2.arq;
  result.fault_stats = fault_session.stats();
  result.run.fault_stats = fault_session.stats();
  result.run.injected_crashes = fault_session.injected_schedule();
  result.hit_phase_cap = stage1.hit_phase_cap || stage2.hit_phase_cap;
  if (options.track_per_node_energy) {
    result.per_node_energy = total.per_node();
  } else if (total.telemetry() != nullptr && total.telemetry()->aggregating() &&
             total.telemetry()->aggregate().node_energy.size() == n) {
    // Fallback: the aggregating hub already carries the per-node ledger, so
    // don't leave the column silently empty just because the meter-side
    // toggle is off. (The aggregate spans the hub's lifetime — attach a
    // fresh hub per run for strictly per-run numbers.)
    result.per_node_energy = total.telemetry()->aggregate().node_energy;
  }
  if (!result.per_node_energy.empty())
    result.run.per_node_energy = result.per_node_energy;
  return result;
}

template EoptResult run_eopt<sim::Topology>(const sim::Topology&,
                                            const EoptOptions&,
                                            const ghs::FragmentForest*);
template EoptResult run_eopt<sim::ImplicitTopology>(const sim::ImplicitTopology&,
                                                    const EoptOptions&,
                                                    const ghs::FragmentForest*);

}  // namespace emst::eopt
