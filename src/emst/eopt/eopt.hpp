// EOPT — the paper's energy-optimal distributed MST algorithm (§V).
//
//   Step 1. Every node limits its transmission radius to r₁ = √(c₁/n)
//           (percolation regime) and runs the modified GHS. WHP this leaves
//           one giant fragment of Θ(n) nodes plus small fragments trapped in
//           O(log² n)-node regions (Thm 5.2).
//   Census. Each fragment computes its size with one broadcast + one
//           convergecast over its Step-1 tree; a fragment larger than
//           β·log² n declares itself the giant.
//   Step 2. All nodes raise the radius to r₂ = √(c₂·log n / n)
//           (connectivity regime, Thm 5.1) and run the modified GHS again.
//           The giant does not initiate — it only accepts CONNECT messages —
//           and keeps its fragment id, so its Θ(n) members never re-announce.
//
// The output is the exact MST of the r₂-visibility graph (which WHP is the
// Euclidean MST of the point set), at O(log n) expected energy /
// O(log n · log log n) WHP — versus Θ(log² n) for classical GHS (Thm 5.3).
//
// Correctness of the two-stage growth: every MSF(G_{r₁}) edge is in MST(G):
// if e ≤ r₁ were the heaviest edge of a cycle C in G, all other edges of C
// would be shorter than r₁, putting C inside G_{r₁} and contradicting
// e ∈ MSF(G_{r₁}) (cycle property). So Step 2 merely finishes Kruskal from a
// correct partial forest.
#pragma once

#include <cstddef>
#include <vector>

#include "emst/geometry/pathloss.hpp"
#include "emst/ghs/common.hpp"
#include "emst/ghs/sync.hpp"
#include "emst/sim/implicit_topology.hpp"
#include "emst/support/deprecated.hpp"

namespace emst::eopt {

/// Options embed the shared `sim::RunConfig` knobs (pathloss, faults, ARQ,
/// per-node / breakdown / telemetry toggles). For faults, ONE session spans
/// Step 1 → census → Step 2: loss draws and the crash clock continue across
/// the stage boundaries (docs/ROBUSTNESS.md).
struct EoptOptions : sim::RunConfig {
  /// Step-1 radius factor: r₁ = step1_factor·√(1/n). Paper experiments: 1.4.
  double step1_factor = 1.4;
  /// Step-2 radius factor: r₂ = step2_factor·√(ln n / n). Paper: 1.6.
  double step2_factor = 1.6;
  /// Giant threshold multiplier: a fragment is giant iff size > β·ln² n.
  double beta = 1.0;
  /// Ablation knobs (paper §V-A lists both as the Step-2 optimizations).
  bool giant_passive = true;
  bool giant_keeps_id = true;
  /// Ablation: use classic TEST/ACCEPT/REJECT probing instead of the
  /// neighbor cache in both steps (isolates the cache's contribution).
  bool neighbor_cache = true;
  /// Power-adapt announcements to the farthest neighbour (see
  /// SyncGhsOptions::announce_min_power) — the §VIII coordinate lever.
  bool announce_min_power = false;
};

struct EoptResult {
  ghs::MstRunResult run;          ///< final tree + totals over both steps
  /// Thm 5.3 stage shares, derived from ONE source of truth: the telemetry
  /// breakdown matrix (`run.energy_breakdown.phase_total(...)`), which every
  /// charge lands in exactly once. step1+census+step2 therefore equals the
  /// run total bit-for-bit — the two views cannot disagree (tested).
  sim::Accounting step1;          ///< Step-1 share (incl. initial announce)
  sim::Accounting census;         ///< fragment-size census share
  sim::Accounting step2;          ///< Step-2 share
  std::size_t step1_fragments = 0;
  std::size_t giant_size = 0;     ///< size of the fragment declared giant
  bool giant_found = false;       ///< some fragment exceeded the threshold
  std::size_t step1_phases = 0;
  std::size_t step2_phases = 0;
  double radius1 = 0.0;
  double radius2 = 0.0;
  /// Per-node transmit energy over all three stages. Filled when
  /// `track_per_node_energy` is set, OR as a fallback when an aggregating
  /// `telemetry` hub was attached (the aggregate ledger covers everything
  /// the hub observed, so attach a fresh hub per run for per-run numbers).
  std::vector<double> per_node_energy;
  /// ARQ counters summed over Step 1 + census + Step 2 (zero when off).
  sim::ArqStats arq{};
  /// Fault-layer drop counters for the whole run (zero when faults off).
  sim::FaultStats fault_stats{};
  /// Some stage stopped at its phase cap (fault mode only; the tree is then
  /// a partial forest rather than the full MST).
  bool hit_phase_cap = false;

  /// The algorithm-independent view (docs/API_TOUR.md). Non-owning.
  [[nodiscard]] RunReport report() const {
    RunReport out = run.report();
    out.faults = fault_stats;
    out.arq = arq;
    out.hit_phase_cap = hit_phase_cap;
    return out;
  }
};

/// Run EOPT on a topology whose max radius is ≥ r₂ (build it with
/// `eopt_topology` or `eopt_implicit_topology`, which use exactly r₂).
///
/// `seed` (optional) starts Step 1 from an existing fragment forest instead
/// of singletons — the *repair* use case: after node failures, feed the
/// surviving MST pieces back in and EOPT completes them into the exact new
/// MST, still exploiting the cheap percolation-radius regime. The seed must
/// be a subset of the target MST (surviving MST edges always are, by the
/// cycle property).
///
/// Templated over the topology backend (`sim::Topology` or
/// `sim::ImplicitTopology`; defined in eopt.cpp, explicitly instantiated
/// for both). The implicit backend is the ten-million-node path: EOPT's
/// per-node state is O(n), so peak memory is the points plus the grid
/// (docs/PERF.md).
template <typename Topo>
EMST_DEPRECATED("use the emst::run facade (emst/run.hpp)")
[[nodiscard]] EoptResult run_eopt(const Topo& topo,
                                  const EoptOptions& options = {},
                                  const ghs::FragmentForest* seed = nullptr);

/// Build the topology EOPT expects for n given points: adjacency at
/// r₂ = step2_factor·√(ln n / n).
[[nodiscard]] sim::Topology eopt_topology(std::vector<geometry::Point2> points,
                                          const EoptOptions& options = {});

/// The memory-lean variant: same r₂, but neighbourhoods are regenerated on
/// demand from the cell grid instead of materialized into a CSR.
[[nodiscard]] sim::ImplicitTopology eopt_implicit_topology(
    std::vector<geometry::Point2> points, const EoptOptions& options = {});

}  // namespace emst::eopt
