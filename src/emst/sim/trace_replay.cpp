#include "emst/sim/trace_replay.hpp"

#include <cstdio>
#include <ostream>

namespace emst::sim {

namespace {

/// One ARQ-flagged frame attempt → the matching ArqStats send counter.
/// Applied to kUnicast charges AND to flagged kSuppress events: a crashed
/// sender's attempt is uncharged but the live stats still counted it.
/// Frame bits split the same way: ACK frames → ack_bits, DATA frames (first
/// attempts and retransmissions alike) → data_bits.
void count_arq_frame(const TelemetryEvent& e, ArqStats& arq) {
  if ((e.flags & kEventFlagRetransmit) != 0) {
    ++arq.retransmissions;
    arq.data_bits += e.bits;
  } else if (e.kind == MsgKind::kArqAck) {
    ++arq.acks_sent;
    arq.ack_bits += e.bits;
  } else {
    ++arq.data_sent;
    arq.data_bits += e.bits;
  }
}

}  // namespace

ReplayTotals replay_events(std::span<const TelemetryEvent> events) {
  ReplayTotals out;
  for (const TelemetryEvent& e : events) {
    const std::size_t p = static_cast<std::size_t>(e.phase);
    switch (e.type) {
      case EventType::kUnicast: {
        out.totals.energy += e.energy;
        ++out.totals.unicasts;
        ++out.totals.deliveries;
        out.totals.bits += e.bits;
        EnergyBreakdown::Cell& c = out.breakdown.cell(e.phase, e.kind);
        c.energy += e.energy;
        ++c.messages;
        c.bits += e.bits;
        ++out.breakdown.unicasts[p];
        ++out.breakdown.deliveries[p];
        if ((e.flags & kEventFlagArq) != 0) count_arq_frame(e, out.arq);
        break;
      }
      case EventType::kBroadcast: {
        out.totals.energy += e.energy;
        ++out.totals.broadcasts;
        out.totals.deliveries += e.receivers;
        out.totals.bits += e.bits;
        EnergyBreakdown::Cell& c = out.breakdown.cell(e.phase, e.kind);
        c.energy += e.energy;
        ++c.messages;
        c.bits += e.bits;
        ++out.breakdown.broadcasts[p];
        out.breakdown.deliveries[p] += e.receivers;
        break;
      }
      case EventType::kLoss:
        ++out.faults.lost;
        break;
      case EventType::kCrashDrop:
        ++out.faults.dropped_crashed;
        break;
      case EventType::kSuppress:
        ++out.faults.suppressed;
        if ((e.flags & kEventFlagArq) != 0) count_arq_frame(e, out.arq);
        break;
      case EventType::kArqDeliver:
        ++out.arq.delivered;
        break;
      case EventType::kArqDuplicate:
        ++out.arq.duplicates;
        break;
      case EventType::kArqGiveUp:
        ++out.arq.give_ups;
        break;
      case EventType::kArqTimeout:
        out.arq.timeout_rounds += e.value;
        break;
      case EventType::kRound:
        out.totals.rounds += e.value;
        out.breakdown.rounds[p] += e.value;
        break;
      case EventType::kCrashInject:
      case EventType::kOracleViolation:
        // Chaos/oracle markers: no charge, no counter — offline tooling
        // reads them, the replayed totals must ignore them.
        break;
      case EventType::kCount:
        break;
    }
  }
  return out;
}

void write_trace_header(std::ostream& out, std::string_view algo,
                        std::size_t n, std::uint64_t seed,
                        std::size_t threads, std::size_t ranks,
                        std::string_view driver) {
  char buf[256];
  int len = std::snprintf(
      buf, sizeof(buf), "{\"trace\":\"emst\",\"version\":1,\"algo\":\"%.*s\","
                        "\"n\":%zu,\"seed\":%llu",
      static_cast<int>(algo.size()), algo.data(), n,
      static_cast<unsigned long long>(seed));
  if (len > 0 && len < static_cast<int>(sizeof(buf)) && threads > 1) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                         ",\"threads\":%zu", threads);
  }
  if (len > 0 && len < static_cast<int>(sizeof(buf)) && ranks > 0) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                         ",\"ranks\":%zu", ranks);
  }
  if (len > 0 && len < static_cast<int>(sizeof(buf)) && !driver.empty()) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                         ",\"driver\":\"%.*s\"", static_cast<int>(driver.size()),
                         driver.data());
  }
  if (len > 0 && len < static_cast<int>(sizeof(buf))) {
    len += std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                         "}\n");
  }
  if (len > 0 && len < static_cast<int>(sizeof(buf))) out.write(buf, len);
}

void write_trace_summary(std::ostream& out, const Accounting& totals,
                         const FaultStats& faults, const ArqStats& arq) {
  char buf[768];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "{\"summary\":{"
      "\"energy\":%.17g,\"unicasts\":%llu,\"broadcasts\":%llu,"
      "\"deliveries\":%llu,\"rounds\":%llu,\"bits\":%llu,"
      "\"lost\":%llu,\"dropped_crashed\":%llu,\"suppressed\":%llu,"
      "\"data_sent\":%llu,\"retransmissions\":%llu,\"acks_sent\":%llu,"
      "\"duplicates\":%llu,\"delivered\":%llu,\"give_ups\":%llu,"
      "\"timeout_rounds\":%llu,\"data_bits\":%llu,\"ack_bits\":%llu}}\n",
      totals.energy, static_cast<unsigned long long>(totals.unicasts),
      static_cast<unsigned long long>(totals.broadcasts),
      static_cast<unsigned long long>(totals.deliveries),
      static_cast<unsigned long long>(totals.rounds),
      static_cast<unsigned long long>(totals.bits),
      static_cast<unsigned long long>(faults.lost),
      static_cast<unsigned long long>(faults.dropped_crashed),
      static_cast<unsigned long long>(faults.suppressed),
      static_cast<unsigned long long>(arq.data_sent),
      static_cast<unsigned long long>(arq.retransmissions),
      static_cast<unsigned long long>(arq.acks_sent),
      static_cast<unsigned long long>(arq.duplicates),
      static_cast<unsigned long long>(arq.delivered),
      static_cast<unsigned long long>(arq.give_ups),
      static_cast<unsigned long long>(arq.timeout_rounds),
      static_cast<unsigned long long>(arq.data_bits),
      static_cast<unsigned long long>(arq.ack_bits));
  if (len > 0 && len < static_cast<int>(sizeof(buf))) out.write(buf, len);
}

}  // namespace emst::sim
