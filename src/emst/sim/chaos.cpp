#include "emst/sim/chaos.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace emst::sim {
namespace {

/// Live node ids in ascending order — the deterministic candidate pool every
/// strategy draws from.
std::vector<graph::NodeId> live_nodes(const ChaosView& view) {
  std::vector<graph::NodeId> live;
  live.reserve(view.node_count);
  for (std::size_t u = 0; u < view.node_count; ++u) {
    const auto id = static_cast<graph::NodeId>(u);
    if (view.alive(id)) live.push_back(id);
  }
  return live;
}

bool cadence_fires(std::uint64_t round, std::uint64_t first,
                   std::uint64_t period) {
  if (round < first) return false;
  if (period == 0) return round == first;
  return (round - first) % period == 0;
}

}  // namespace

void KillLeader::on_round(const ChaosView& view,
                          std::vector<CrashWindow>& out) {
  if (!cadence_fires(view.round, first_, period_)) return;
  if (view.node_count == 0 || remaining_budget(view.node_count) < 1) return;
  graph::NodeId victim = graph::kNoNode;
  if (!view.leaders.empty()) {
    // Leader of the largest live fragment; ties go to the smaller leader id.
    std::vector<std::size_t> population(view.leaders.size(), 0);
    for (std::size_t u = 0; u < view.leaders.size(); ++u) {
      const auto id = static_cast<graph::NodeId>(u);
      if (view.alive(id)) ++population[view.leaders[u]];
    }
    std::size_t best = 0;
    for (std::size_t leader = 0; leader < population.size(); ++leader) {
      const auto id = static_cast<graph::NodeId>(leader);
      if (population[leader] > best && view.alive(id)) {
        best = population[leader];
        victim = id;
      }
    }
  }
  if (victim == graph::kNoNode) {
    // No census published (or every leader already dead): behead the
    // deployment deterministically from the bottom of the id space.
    const std::vector<graph::NodeId> live = live_nodes(view);
    if (live.empty()) return;
    victim = live.front();
  }
  kill(view, victim, out);
}

void SeverCoreEdge::on_round(const ChaosView& view,
                             std::vector<CrashWindow>& out) {
  if (!cadence_fires(view.round, first_, period_)) return;
  if (view.node_count == 0 || remaining_budget(view.node_count) < 2) return;
  graph::NodeId a = graph::kNoNode;
  graph::NodeId b = graph::kNoNode;
  if (!view.tree.empty()) {
    // Minimum-weight fragment-tree edge whose endpoints are both still up:
    // the first edge any merge accepted, the structural core of its fragment.
    const graph::Edge* core = nullptr;
    for (const graph::Edge& e : view.tree) {
      if (!view.alive(e.u) || !view.alive(e.v)) continue;
      if (core == nullptr || graph::edge_less(e, *core)) core = &e;
    }
    if (core != nullptr) {
      a = core->u;
      b = core->v;
    }
  }
  if (a == graph::kNoNode) {
    const std::vector<graph::NodeId> live = live_nodes(view);
    if (live.size() < 2) return;
    a = live[0];
    b = live[1];
  }
  kill(view, a, out);
  kill(view, b, out);
}

void PartitionHalf::on_round(const ChaosView& view,
                             std::vector<CrashWindow>& out) {
  if (view.round != at_round_) return;
  if (view.node_count == 0) return;
  std::vector<graph::NodeId> victims = live_nodes(view);
  if (!view.points.empty()) {
    // Central separator strip: the nodes nearest the x = 0.5 line are the
    // cheapest vertex cut through a unit-square geometric deployment.
    std::sort(victims.begin(), victims.end(),
              [&](graph::NodeId lhs, graph::NodeId rhs) {
                const double dl = std::abs(view.points[lhs].x - 0.5);
                const double dr = std::abs(view.points[rhs].x - 0.5);
                if (dl != dr) return dl < dr;
                return lhs < rhs;
              });
  }
  const std::size_t budget = remaining_budget(view.node_count);
  if (victims.size() > budget) victims.resize(budget);
  for (graph::NodeId victim : victims) kill(view, victim, out);
}

void CrashWaveAtPhaseBoundary::on_round(const ChaosView& view,
                                        std::vector<CrashWindow>& out) {
  const bool fallback = fallback_period_ != 0 && view.round != 0 &&
                        view.round % fallback_period_ == 0;
  if (!view.at_phase_boundary && !fallback) return;
  if (view.node_count == 0) return;
  const std::vector<graph::NodeId> live = live_nodes(view);
  if (live.empty()) return;
  std::size_t budget = remaining_budget(view.node_count);
  graph::NodeId previous = graph::kNoNode;
  for (std::size_t i = 0; i < wave_ && budget > 0; ++i) {
    // Spread the wave across the live id space so one crash burst hits
    // several fragments at once.
    const graph::NodeId victim = live[i * live.size() / wave_];
    if (victim == previous) continue;  // tiny populations collapse indices
    kill(view, victim, out);
    previous = victim;
    --budget;
  }
}

ReplaySchedule::ReplaySchedule(std::vector<CrashWindow> schedule)
    : schedule_(std::move(schedule)) {
  std::sort(schedule_.begin(), schedule_.end(),
            [](const CrashWindow& a, const CrashWindow& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.node != b.node) return a.node < b.node;
              return a.until < b.until;
            });
}

void ReplaySchedule::on_round(const ChaosView& view,
                              std::vector<CrashWindow>& out) {
  while (cursor_ < schedule_.size() && schedule_[cursor_].from <= view.round) {
    out.push_back(schedule_[cursor_]);
    ++cursor_;
  }
}

std::unique_ptr<BudgetedController> make_controller(std::string_view name) {
  if (name == "kill_leader") return std::make_unique<KillLeader>();
  if (name == "sever_core_edge") return std::make_unique<SeverCoreEdge>();
  if (name == "partition_half") return std::make_unique<PartitionHalf>();
  if (name == "crash_wave")
    return std::make_unique<CrashWaveAtPhaseBoundary>();
  return nullptr;
}

std::span<const std::string_view> shipped_strategies() {
  static constexpr std::array<std::string_view, 4> kNames = {
      "kill_leader", "sever_core_edge", "partition_half", "crash_wave"};
  return kNames;
}

std::vector<CrashWindow> minimize_crashes(
    std::span<const CrashWindow> schedule,
    const std::function<bool(std::span<const CrashWindow>)>& trips) {
  std::vector<CrashWindow> current(schedule.begin(), schedule.end());
  if (!trips(current)) return {};
  // Zeller–Hildebrandt ddmin: try ever-finer subsets, then their
  // complements; terminates 1-minimal once granularity reaches |current|.
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && !reduced;
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, current.size());
      std::vector<CrashWindow> subset(current.begin() + start,
                                      current.begin() + stop);
      if (subset.size() < current.size() && trips(subset)) {
        current = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    for (std::size_t start = 0; start < current.size() && !reduced;
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, current.size());
      std::vector<CrashWindow> complement;
      complement.reserve(current.size() - (stop - start));
      complement.insert(complement.end(), current.begin(),
                        current.begin() + start);
      complement.insert(complement.end(), current.begin() + stop,
                        current.end());
      if (!complement.empty() && complement.size() < current.size() &&
          trips(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;
    if (granularity >= current.size()) break;
    granularity = std::min(current.size(), granularity * 2);
  }
  return current;
}

}  // namespace emst::sim
