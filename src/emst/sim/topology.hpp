// Physical network topology for the simulator.
//
// Owns node positions, the adjacency at the *maximum* transmission radius an
// algorithm is allowed to use, and a spatial index for power-adaptive local
// broadcasts. Algorithms that operate below the maximum radius (EOPT Step 1)
// simply filter neighbours by distance — the paper's "nodes set the power
// level adaptively" capability (§II).
#pragma once

#include <memory>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/spatial/cell_grid.hpp"

namespace emst::sim {

using NodeId = graph::NodeId;

class Topology {
 public:
  /// Build from points with maximum transmission radius `max_radius`.
  Topology(std::vector<geometry::Point2> points, double max_radius);

  /// Adopt an already-built RGG (adjacency radius becomes the max radius).
  explicit Topology(rgg::Rgg instance);

  /// Build with an EXPLICIT edge set (e.g. the Gabriel subgraph of the unit
  /// disk graph): communication is restricted to the given links, though
  /// local broadcasts still propagate to everything in range (the radio
  /// does not know about logical topologies).
  Topology(std::vector<geometry::Point2> points, double max_radius,
           std::vector<graph::Edge> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return points_.size(); }
  [[nodiscard]] double max_radius() const noexcept { return max_radius_; }
  [[nodiscard]] const std::vector<geometry::Point2>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] geometry::Point2 position(NodeId u) const { return points_[u]; }
  [[nodiscard]] const graph::AdjacencyList& graph() const noexcept { return graph_; }

  [[nodiscard]] double distance(NodeId u, NodeId v) const {
    return geometry::distance(points_[u], points_[v]);
  }

  /// Neighbors of u within the max radius, ascending (weight, id).
  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const {
    return graph_.neighbors(u);
  }

  /// All nodes (other than u) within Euclidean `radius` of u. Unlike
  /// neighbors(), this consults the spatial index, so it works for radii
  /// beyond max_radius (Co-NNT's unbounded doubling probe).
  [[nodiscard]] std::vector<NodeId> nodes_within(NodeId u, double radius) const;

 private:
  std::vector<geometry::Point2> points_;
  double max_radius_ = 0.0;
  graph::AdjacencyList graph_;
  std::unique_ptr<spatial::CellGrid> grid_;  // indexes points_
};

}  // namespace emst::sim
