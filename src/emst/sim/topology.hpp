// Physical network topology for the simulator (materialized backend).
//
// Owns node positions, the adjacency at the *maximum* transmission radius an
// algorithm is allowed to use, and a spatial index for power-adaptive local
// broadcasts. Algorithms that operate below the maximum radius (EOPT Step 1)
// simply filter neighbours by distance — the paper's "nodes set the power
// level adaptively" capability (§II).
//
// This is one of two interchangeable topology backends (see
// docs/ARCHITECTURE.md): Topology stores the full Θ(n log n)-entry CSR
// adjacency, while sim::ImplicitTopology regenerates neighbourhoods on
// demand from the cell grid in O(n) memory. Engines and drivers are
// templated over the backend; both expose the same surface —
//
//   node_count() / max_radius() / points() / position(u) / distance(u, v)
//   neighbors(u)              — ascending (weight, id), all within max radius
//   neighbors_within(u, r)    — the prefix of neighbors(u) with w <= r
//   nodes_within(u, r)        — spatial-index query, any radius, grid order
//   edge_count()              — |E| at the max radius
//
// and the canonical-order guarantee: neighbors(u) is sorted ascending by
// (weight, id), identically for both backends, so every driver decision that
// breaks ties by enumeration order is bitwise-reproducible across backends.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/rgg/rgg.hpp"
#include "emst/spatial/cell_grid.hpp"

namespace emst::sim {

using NodeId = graph::NodeId;

class Topology {
 public:
  /// Build from points with maximum transmission radius `max_radius`.
  Topology(std::vector<geometry::Point2> points, double max_radius);

  /// Adopt an already-built RGG (adjacency radius becomes the max radius).
  explicit Topology(rgg::Rgg instance);

  /// Build with an EXPLICIT edge set (e.g. the Gabriel subgraph of the unit
  /// disk graph): communication is restricted to the given links, though
  /// local broadcasts still propagate to everything in range (the radio
  /// does not know about logical topologies).
  Topology(std::vector<geometry::Point2> points, double max_radius,
           std::vector<graph::Edge> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return points_.size(); }
  [[nodiscard]] double max_radius() const noexcept { return max_radius_; }
  [[nodiscard]] const std::vector<geometry::Point2>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] geometry::Point2 position(NodeId u) const { return points_[u]; }
  [[nodiscard]] const graph::AdjacencyList& graph() const noexcept { return graph_; }

  [[nodiscard]] double distance(NodeId u, NodeId v) const {
    return geometry::distance(points_[u], points_[v]);
  }

  /// Neighbors of u within the max radius, ascending (weight, id).
  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const {
    return graph_.neighbors(u);
  }

  /// Neighbors of u within `radius` (<= max radius), ascending (weight, id).
  /// The weight-sorted invariant makes this the prefix of neighbors(u) up to
  /// the last weight <= radius.
  [[nodiscard]] std::span<const graph::Neighbor> neighbors_within(
      NodeId u, double radius) const {
    const auto nbs = graph_.neighbors(u);
    const auto end = std::upper_bound(
        nbs.begin(), nbs.end(), radius,
        [](double r, const graph::Neighbor& nb) { return r < nb.w; });
    return nbs.first(static_cast<std::size_t>(end - nbs.begin()));
  }

  /// Number of undirected edges at the max radius.
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return graph_.edge_count();
  }

  /// All nodes (other than u) within Euclidean `radius` of u. Unlike
  /// neighbors(), this consults the spatial index, so it works for radii
  /// beyond max_radius (Co-NNT's unbounded doubling probe).
  [[nodiscard]] std::vector<NodeId> nodes_within(NodeId u, double radius) const;

 private:
  std::vector<geometry::Point2> points_;
  double max_radius_ = 0.0;
  graph::AdjacencyList graph_;
  std::unique_ptr<spatial::CellGrid> grid_;  // indexes points_
};

/// Customization point used by drivers that need Neighbor::edge_index
/// (classic GHS names fragments by global edge index). The CSR backend
/// already carries indices, so this is a no-op; the implicit backend's
/// overload builds its lazy rank table.
inline void prepare_edge_indices(const Topology&) {}

}  // namespace emst::sim
