// Sharded parallel simulation engine (docs/PARALLEL.md).
//
// `ShardedNetwork<Msg>` is a drop-in replacement for `Network<Msg>` that
// spreads the per-round message work across worker threads while producing
// BITWISE-identical results — same delivery sequences, same meter totals
// (float addition order preserved), same telemetry event stream, same fault
// fates — regardless of thread count. The determinism argument:
//
//  1. Partition. The unit square is cut into a grid of tiles; tiles map
//     round-robin onto S shards (S = threads), and every node belongs to the
//     shard of its tile. A message lives in the shard of its RECEIVER, so a
//     directed link (u,v) is handled by exactly one shard — per-link state
//     (FIFO clamp, Gilbert–Elliott burst chain) needs no synchronization.
//  2. Per-shard calendar queues. Each shard runs its own ring of per-round
//     buckets (the engine of network.hpp). Messages are appended in global
//     send-sequence order, so within a shard any stable by-receiver ordering
//     reproduces the (receiver, sequence) delivery contract; across shards
//     receivers never collide, so a receiver-keyed S-way merge reconstructs
//     the exact global order.
//  3. Order-sensitive state stays serial. Energy totals are float sums, so
//     charges must accumulate in exactly global send order: sends are staged
//     (frontend calls) or logged per shard (process_round handlers), merged
//     deterministically, and replayed through the ONE meter at the round
//     barrier — telemetry events fall out in the same order `Network` emits
//     them. Everything else — delay clamping, fate evaluation, bucket
//     insertion, drain ordering, crash classification — runs shard-parallel.
//  4. Counter-based randomness. Channel fates derive from (fault seed,
//     global message number) via `FaultInjector::drop_at`, not from a shared
//     sequential generator, so shard workers evaluate the k-th fate without
//     having observed draws k-1 … 0. Extra delays are drawn serially at the
//     barrier from the same sequential stream `Network` uses.
//
// Cross-shard exchange is mailbox-shaped, PGAS style: the producing side
// (frontend staging, or a shard's send log in process_round) and the
// consuming side (the receiver shard's inbox) form a double-buffered pair
// whose swap point is the round barrier — workers never write another
// shard's state, and the serial barrier code never runs concurrently with
// the workers (the pool's fork/join provides the happens-before edges).
//
// Two driving modes:
//  - collect_round(): the `Network` facade. Sends issued by the caller
//    between rounds are staged and replayed at the next barrier; deliveries
//    come back as one merged, globally-ordered batch.
//  - process_round(handler): the scaling mode. Each shard's worker consumes
//    its own deliveries in shard-local order and stages sends from the
//    handler; the barrier merges the logs by (triggering delivery rank,
//    issue index), which is exactly the send order a sequential driver
//    processing the merged batch would have produced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/topology.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/flat_map.hpp"
#include "emst/support/parallel.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

/// Topo is either sim::Topology or sim::ImplicitTopology (see topology.hpp).
/// The implicit backend's neighbour spans live in thread-local scratch,
/// which is exactly why stage_broadcast can run on worker threads in Mode B:
/// each worker enumerates into its own buffer.
template <typename Msg, typename Topo = Topology>
class ShardedNetwork {
 public:
  ShardedNetwork(const Topo& topo, geometry::PathLoss model = {},
                 bool unbounded_broadcast = false, DelayModel delays = {},
                 FaultModel faults = {}, Telemetry* telemetry = nullptr,
                 std::size_t threads = 1)
      : topo_(topo),
        meter_(model),
        unbounded_broadcast_(unbounded_broadcast),
        delays_(delays),
        delay_rng_(delays.seed),
        faults_(faults),
        shard_count_(threads == 0 ? 1 : threads),
        shards_(shard_count_),
        pool_(shard_count_ > 1 ? shard_count_ : 0) {
    meter_.attach_telemetry(telemetry);
    for (Shard& shard : shards_)
      shard.buckets.resize(delays.max_extra_delay + 1);
    build_partition();
    if (faults_.enabled())
      faults_.set_chaos_env(topo_.node_count(), topo_.points());
  }

  // -- Network facade ------------------------------------------------------

  /// Send m from u to v; delivered next round. Charges d(u,v)^α (at the
  /// next round barrier, in issue order — the meter context active NOW is
  /// captured with the send, exactly as if the charge had happened inline).
  void unicast(NodeId u, NodeId v, Msg m) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    stage_unicast(ops_, targets_, meter_context(), u, v, d, std::move(m));
  }

  /// Locally broadcast m from u at power radius `radius`. Charges radius^α.
  void broadcast(NodeId u, double radius, const Msg& m) {
    stage_broadcast(ops_, targets_, meter_context(), u, radius, Msg(m));
  }
  void broadcast(NodeId u, double radius, Msg&& m) {
    stage_broadcast(ops_, targets_, meter_context(), u, radius, std::move(m));
  }

  [[nodiscard]] bool pending() const noexcept {
    return staged_live_ > 0 || inflight_ > 0;
  }

  /// Advance to the next round and return the messages due for delivery,
  /// sorted by (receiver, global send sequence) — byte-identical to
  /// `Network::collect_round` on the same schedule, for every thread count.
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    flush_staged();
    begin_round();
    run_shard_phase();
    std::vector<Delivery<Msg>> out;
    merge_round(&out, /*assign_ranks=*/false);
    return out;
  }

  // -- Sharded processing mode --------------------------------------------

 private:
  static constexpr unsigned kSubBits = 24;  ///< sends-per-handler-call cap

  /// Meter context captured with each staged send, plus the Mode-B merge
  /// key (frontend sends keep key 0 — their staging order is already the
  /// issue order). `bits` is NOT ambient meter state: it is computed from
  /// the engine's WireFormat at stage time (same place Network computes it)
  /// and replayed through `set_bits` at the barrier.
  struct SendContext {
    MsgKind kind = MsgKind::kData;
    PhaseTag phase = PhaseTag::kRun;
    std::uint8_t flags = 0;
    std::uint32_t fragment = kNoEventNode;
    std::uint32_t bits = 0;
    std::uint64_t key = 0;
  };

  struct Shard;

 public:
  /// Per-shard context a `process_round` handler sends through. Lives on
  /// the worker thread; everything it touches is shard-local, so handlers
  /// must not reach for the meter or another shard's state. Message-kind /
  /// fragment context for the staged sends is set here (it is captured per
  /// send and replayed into the meter at the barrier).
  class ShardContext {
   public:
    void unicast(NodeId u, NodeId v, Msg m) {
      EMST_ASSERT(u < net_->topo_.node_count() &&
                  v < net_->topo_.node_count() && u != v);
      const double d = net_->topo_.distance(u, v);
      EMST_ASSERT_MSG(net_->unbounded_broadcast_ ||
                          d <= net_->topo_.max_radius() * (1.0 + 1e-12),
                      "unicast beyond the maximum transmission radius");
      ctx_.key = (rank_ << kSubBits) | sub_++;
      net_->stage_unicast(shard_->ops, shard_->targets, ctx_, u, v, d,
                          std::move(m));
    }
    void broadcast(NodeId u, double radius, const Msg& m) {
      ctx_.key = (rank_ << kSubBits) | sub_++;
      net_->stage_broadcast(shard_->ops, shard_->targets, ctx_, u, radius,
                            Msg(m));
    }

    void set_kind(MsgKind kind) noexcept { ctx_.kind = kind; }
    void set_fragment(std::uint32_t fragment) noexcept {
      ctx_.fragment = fragment;
    }
    [[nodiscard]] std::size_t shard() const noexcept { return index_; }

   private:
    friend class ShardedNetwork;
    ShardedNetwork* net_ = nullptr;
    Shard* shard_ = nullptr;
    SendContext ctx_{};
    std::size_t index_ = 0;
    std::uint64_t rank_ = 0;  ///< global rank of the delivery being handled
    std::uint64_t sub_ = 0;   ///< send index within the current handler call
  };

  /// Advance one round, letting each shard's worker consume its own
  /// deliveries: `handler(ShardContext&, const Delivery<Msg>&)` runs on the
  /// owning worker, in shard-local delivery order. Sends staged by the
  /// handler are merged at the barrier into the order a sequential driver
  /// iterating the full collect_round() batch would have issued them, then
  /// charged and routed. Handlers must be deterministic functions of the
  /// delivery and shard-local state. Returns the number of deliveries.
  template <typename Handler>
  std::size_t process_round(Handler&& handler) {
    flush_staged();
    begin_round();
    run_shard_phase();
    merge_round(nullptr, /*assign_ranks=*/true);
    const SendContext ambient = meter_context();
    const std::size_t delivered = round_deliveries_;
    auto shard_task = [&](std::size_t s) {
      Shard& shard = shards_[s];
      ShardContext ctx;
      ctx.net_ = this;
      ctx.shard_ = &shard;
      ctx.ctx_ = ambient;
      ctx.index_ = s;
      std::size_t next_rank = 0;
      for (Drained& item : shard.drained) {
        if (item.fate != kFateDeliver) continue;
        ctx.rank_ = shard.ranks[next_rank++];
        ctx.sub_ = 0;
        const Delivery<Msg> delivery{item.from, item.to, item.distance,
                                     std::move(item.msg)};
        handler(ctx, delivery);
      }
    };
    if (shard_count_ == 1) {
      shard_task(0);
    } else {
      pool_.run(shard_task, shard_count_);
    }
    merge_send_logs();
    flush_staged();
    return delivered;
  }

  // -- Accessors (Network-compatible) -------------------------------------

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return faults_.stats();
  }
  /// Attach a runtime invariant oracle, checked at every round barrier
  /// (serial section). Null (the default) costs one pointer test per round.
  void attach_oracle(InvariantOracle* oracle) noexcept { oracle_ = oracle; }
  [[nodiscard]] InvariantOracle* oracle() const noexcept { return oracle_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::size_t shard_of(NodeId u) const {
    return node_shard_[u];
  }
  /// The engine's message codec (wire.hpp) — same contract as
  /// Network::wire_format(). Configure before sending; staged sends capture
  /// their size at issue time.
  [[nodiscard]] WireFormat<Msg>& wire_format() noexcept { return wire_; }
  [[nodiscard]] const WireFormat<Msg>& wire_format() const noexcept {
    return wire_;
  }

 private:
  static constexpr std::uint8_t kFateDeliver = 0;
  static constexpr std::uint8_t kFateLost = 1;
  static constexpr std::uint8_t kFateCrashed = 2;
  static constexpr std::size_t kSmallBucket = 48;  // same policy as Network

  struct Target {
    NodeId to;
    double distance;
  };

  /// One staged send (unicast or broadcast) awaiting the barrier replay.
  struct StagedOp {
    SendContext ctx;
    NodeId from = 0;
    double reach = 0.0;  ///< distance (unicast) or power radius (broadcast)
    std::uint32_t first = 0;  ///< targets range in the owning target array
    std::uint32_t count = 0;
    bool is_broadcast = false;
    bool suppressed = false;  ///< sender down at issue time (clock-stable)
    Msg msg{};
  };

  /// One routed physical message in a shard's inbox (the consume side of
  /// the mailbox pair), awaiting ingest into the shard's calendar ring.
  struct Wire {
    std::uint64_t seq;  ///< global send sequence — fate stream + ordering
    std::uint64_t due;  ///< pre-FIFO-clamp delivery round
    NodeId from;
    NodeId to;
    double distance;
    std::uint32_t bits;  ///< wire size, stamped on delivery-time drop events
    Msg msg;
  };

  struct Item {
    NodeId from;
    NodeId to;
    double distance;
    std::uint32_t bits;
    Msg msg;
    bool lost;  ///< counter-based channel fate, evaluated at ingest
  };

  /// One ordered (receiver, sequence) entry of a shard's drained bucket,
  /// classified but not yet filtered — the serial merge emits drop events
  /// in global order and hands survivors out.
  struct Drained {
    NodeId from;
    NodeId to;
    double distance;
    std::uint32_t bits;
    std::uint8_t fate;
    Msg msg;
  };

  struct Shard {
    std::vector<std::vector<Item>> buckets;  ///< calendar ring (D+1 buckets)
    std::size_t head = 0;  ///< bucket due at the CURRENT round during ingest
    support::FlatMap64 last_due;  ///< per-directed-edge FIFO clamp
    support::FlatMap64 ge_state;  ///< per-link Gilbert–Elliott burst chains
    std::vector<Wire> inbox;      ///< mailbox consume buffer (swap = barrier)
    std::vector<Drained> drained; ///< this round's ordered classified items
    std::size_t cursor = 0;       ///< merge position into `drained`
    std::vector<std::uint64_t> ranks;  ///< global rank per surviving item
    // Mode-B send log (the produce side of the mailbox pair).
    std::vector<StagedOp> ops;
    std::vector<Target> targets;
    std::size_t log_cursor = 0;
    // Drain scratch, reused across rounds.
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> recv_slot;
    std::vector<NodeId> touched;
  };

  // -- Construction --------------------------------------------------------

  void build_partition() {
    // Grid of g×g tiles, tiles assigned round-robin to shards: every shard
    // owns a spatially-coherent tile set, and the mapping depends only on
    // (points, shard count) — never on scheduling.
    std::size_t g = 1;
    while (g * g < shard_count_) ++g;
    const auto& points = topo_.points();
    node_shard_.resize(points.size());
    const double scale = static_cast<double>(g);
    auto cell = [g, scale](double coord) {
      const double scaled = coord * scale;
      if (!(scaled > 0.0)) return std::size_t{0};
      return std::min(static_cast<std::size_t>(scaled), g - 1);
    };
    for (std::size_t u = 0; u < points.size(); ++u) {
      const std::size_t tile = cell(points[u].x) + g * cell(points[u].y);
      node_shard_[u] = static_cast<std::uint32_t>(tile % shard_count_);
    }
  }

  // -- Staging (issue side) ------------------------------------------------

  [[nodiscard]] SendContext meter_context() const noexcept {
    return {meter_.kind(), meter_.phase(), meter_.flags(), meter_.fragment(),
            0};
  }

  void stage_unicast(std::vector<StagedOp>& ops, std::vector<Target>& targets,
                     const SendContext& ctx, NodeId u, NodeId v, double d,
                     Msg m) {
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = d;
    op.first = static_cast<std::uint32_t>(targets.size());
    op.count = 1;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    const std::size_t live = op.suppressed ? 0 : 1;
    targets.push_back({v, d});
    ops.push_back(std::move(op));
    note_staged(ops, live);
  }

  void stage_broadcast(std::vector<StagedOp>& ops,
                       std::vector<Target>& targets, const SendContext& ctx,
                       NodeId u, double radius, Msg m) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = radius;
    op.first = static_cast<std::uint32_t>(targets.size());
    op.is_broadcast = true;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    if (!op.suppressed) {
      // Same receiver enumeration as Network::broadcast_impl, including the
      // per-receiver distance recomputation (bitwise-equal charges depend
      // on identical inputs, not just identical sets).
      if (radius <= topo_.max_radius()) {
        for (const graph::Neighbor& nb : topo_.neighbors(u)) {
          if (nb.w <= radius) targets.push_back({nb.id, topo_.distance(u, nb.id)});
          else
            break;
        }
      } else {
        for (const NodeId v : topo_.nodes_within(u, radius))
          targets.push_back({v, topo_.distance(u, v)});
      }
      op.count =
          static_cast<std::uint32_t>(targets.size()) - op.first;
    }
    ops.push_back(std::move(op));
    note_staged(ops, ops.back().count);
  }

  /// Track staged-but-unflushed physical deliveries for pending(). Only the
  /// frontend staging feeds pending() between rounds; Mode-B logs are
  /// flushed before process_round returns, inside the same call.
  void note_staged(const std::vector<StagedOp>& ops, std::size_t live) {
    if (&ops == &ops_) staged_live_ += live;
  }

  // -- Barrier: serial charge replay + routing -----------------------------

  /// Replay the frontend staging through the meter in issue order (the ONLY
  /// place charges, suppressions and their telemetry events happen — float
  /// accumulation order and event order match Network exactly), then route
  /// each physical message to its receiver's shard inbox.
  void flush_staged() {
    if (ops_.empty()) return;
    const MsgKind kind0 = meter_.kind();
    const PhaseTag phase0 = meter_.phase();
    const std::uint8_t flags0 = meter_.flags();
    const std::uint32_t fragment0 = meter_.fragment();
    for (StagedOp& op : ops_) {
      meter_.set_kind(op.ctx.kind);
      meter_.set_phase(op.ctx.phase);
      meter_.set_flags(op.ctx.flags);
      meter_.set_fragment(op.ctx.fragment);
      meter_.set_bits(op.ctx.bits);
      if (op.suppressed) {
        ++faults_.stats().suppressed;
        meter_.note_event(EventType::kSuppress, op.from,
                          op.is_broadcast ? kNoEventNode
                                          : targets_[op.first].to,
                          op.reach);
        continue;
      }
      if (op.is_broadcast) {
        meter_.charge_broadcast(op.from, op.reach, op.count);
        if (op.count == 0) continue;
        const std::uint32_t last = op.first + op.count - 1;
        for (std::uint32_t i = op.first; i < last; ++i)
          route(op.from, targets_[i].to, targets_[i].distance, op.ctx.bits,
                Msg(op.msg));
        route(op.from, targets_[last].to, targets_[last].distance,
              op.ctx.bits, std::move(op.msg));
      } else {
        const Target& t = targets_[op.first];
        meter_.charge_unicast(op.from, t.to, t.distance);
        route(op.from, t.to, t.distance, op.ctx.bits, std::move(op.msg));
      }
    }
    meter_.set_kind(kind0);
    meter_.set_phase(phase0);
    meter_.set_flags(flags0);
    meter_.set_fragment(fragment0);
    // Network clears ambient bits after every send; end the replay in the
    // same state so later note_events stamp identically.
    meter_.clear_bits();
    ops_.clear();
    targets_.clear();
    staged_live_ = 0;
  }

  void route(NodeId u, NodeId v, double d, std::uint32_t bits, Msg m) {
    // Sequential draws, one per routed message, in global send order — the
    // exact stream Network::enqueue consumes. The FIFO clamp is applied
    // shard-side (per-link state lives with the receiver's shard).
    std::uint64_t due = now_ + 1;
    if (delays_.max_extra_delay > 0)
      due += delay_rng_.uniform_int(delays_.max_extra_delay + 1);
    Shard& shard = shards_[node_shard_[v]];
    shard.inbox.push_back({seq_++, due, u, v, d, bits, std::move(m)});
    ++inflight_;
  }

  void begin_round() {
    meter_.tick_round();
    ++now_;
    if (faults_.enabled()) {
      // Serial section: the chaos controller consult (and its injections)
      // happen before any worker runs. `inflight_` here counts routed,
      // not-yet-delivered messages — Network's pre-drain count — so both
      // engines show strategies the same view.
      faults_.set_in_flight(inflight_);
      faults_.advance_to(now_);
      for (const CrashWindow& w : faults_.take_new_injections())
        meter_.note_event(EventType::kCrashInject, w.node, kNoEventNode, 0.0,
                          w.until);
    }
    if (oracle_ != nullptr) oracle_->on_round(now_, meter_);
  }

  // -- Parallel section: ingest + drain, one task per shard ----------------

  void run_shard_phase() {
    if (shard_count_ == 1) {
      shard_round(shards_[0]);
    } else {
      pool_.run([this](std::size_t s) { shard_round(shards_[s]); },
                shard_count_);
    }
  }

  /// Worker body. Touches only `shard` plus read-only shared state (the
  /// topology, the fault model/clock/windows — all written strictly between
  /// parallel sections). Fates come from the counter-based stream, burst
  /// state from the shard-local map.
  void shard_round(Shard& shard) {
    const std::uint32_t max_delay = delays_.max_extra_delay;
    for (Wire& wire : shard.inbox) {
      std::uint64_t due = wire.due;
      if (max_delay > 0) {
        const std::uint64_t key = (static_cast<std::uint64_t>(wire.from) << 32) |
                                  static_cast<std::uint64_t>(wire.to);
        const auto slot = shard.last_due.find_or_insert(key, due);
        if (!slot.inserted) {
          due = std::max(due, *slot.value);
          *slot.value = due;
        }
      }
      const bool lost =
          faults_.enabled() &&
          faults_.drop_at(wire.seq, wire.from, wire.to, shard.ge_state);
      // Ring-wrap invariant (see the calendar audit in network.hpp): after
      // the clamp, due ∈ [now, now + D] — D+1 residues, D+1 buckets.
      EMST_ASSERT(due >= now_ && due - now_ <= max_delay);
      std::size_t idx = shard.head + static_cast<std::size_t>(due - now_);
      if (idx >= shard.buckets.size()) idx -= shard.buckets.size();
      shard.buckets[idx].push_back({wire.from, wire.to, wire.distance,
                                    wire.bits, std::move(wire.msg), lost});
    }
    shard.inbox.clear();
    std::vector<Item>& bucket = shard.buckets[shard.head];
    shard.head = shard.head + 1 == shard.buckets.size() ? 0 : shard.head + 1;
    shard.drained.clear();
    drain_by_receiver(shard, bucket);
    bucket.clear();
  }

  void classify(Shard& shard, Item& item) {
    std::uint8_t fate = kFateDeliver;
    if (faults_.enabled()) {
      if (item.lost) fate = kFateLost;
      else if (faults_.crashed(item.to))
        fate = kFateCrashed;
    }
    shard.drained.push_back({item.from, item.to, item.distance, item.bits,
                             fate, std::move(item.msg)});
  }

  /// Same three-strategy ordering as Network::drain_by_receiver — append
  /// order within a shard bucket IS global sequence order, so stable
  /// by-receiver ordering yields (receiver, sequence) per shard.
  void drain_by_receiver(Shard& shard, std::vector<Item>& bucket) {
    const std::size_t b = bucket.size();
    if (b == 0) return;
    bool in_order = true;
    for (std::size_t i = 1; i < b; ++i) {
      if (bucket[i - 1].to > bucket[i].to) {
        in_order = false;
        break;
      }
    }
    if (in_order) {
      for (Item& item : bucket) classify(shard, item);
      return;
    }
    shard.order.resize(b);
    if (b <= kSmallBucket) {
      for (std::size_t i = 0; i < b; ++i)
        shard.order[i] = static_cast<std::uint32_t>(i);
      std::stable_sort(shard.order.begin(), shard.order.end(),
                       [&bucket](std::uint32_t a, std::uint32_t c) {
                         return bucket[a].to < bucket[c].to;
                       });
    } else {
      if (shard.recv_slot.size() < topo_.node_count())
        shard.recv_slot.assign(topo_.node_count(), 0);
      shard.touched.clear();
      for (const Item& item : bucket) {
        if (shard.recv_slot[item.to]++ == 0) shard.touched.push_back(item.to);
      }
      std::sort(shard.touched.begin(), shard.touched.end());
      std::uint32_t offset = 0;
      for (const NodeId r : shard.touched) {
        const std::uint32_t count = shard.recv_slot[r];
        shard.recv_slot[r] = offset;
        offset += count;
      }
      for (std::size_t i = 0; i < b; ++i)
        shard.order[shard.recv_slot[bucket[i].to]++] =
            static_cast<std::uint32_t>(i);
      for (const NodeId r : shard.touched) shard.recv_slot[r] = 0;
    }
    for (const std::uint32_t idx : shard.order) classify(shard, bucket[idx]);
  }

  // -- Barrier: serial merge -----------------------------------------------

  /// Walk the shards' drained lists in global (receiver, sequence) order —
  /// receivers partition across shards, so a receiver-keyed S-way merge is
  /// exact and tie-free. Drop events and fault stats are emitted here, in
  /// the same interleaved order Network's delivery loop produces them.
  void merge_round(std::vector<Delivery<Msg>>* out, bool assign_ranks) {
    std::size_t total = 0;
    for (Shard& shard : shards_) {
      shard.cursor = 0;
      shard.ranks.clear();
      total += shard.drained.size();
    }
    inflight_ -= total;
    if (out != nullptr) out->reserve(total);
    std::uint64_t rank = 0;
    for (;;) {
      Shard* next = nullptr;
      for (Shard& shard : shards_) {
        if (shard.cursor >= shard.drained.size()) continue;
        if (next == nullptr || shard.drained[shard.cursor].to <
                                   next->drained[next->cursor].to) {
          next = &shard;
        }
      }
      if (next == nullptr) break;
      Drained& item = next->drained[next->cursor++];
      switch (item.fate) {
        case kFateLost:
          ++faults_.stats().lost;
          meter_.set_bits(item.bits);
          meter_.note_event(EventType::kLoss, item.from, item.to,
                            item.distance);
          meter_.clear_bits();
          break;
        case kFateCrashed:
          ++faults_.stats().dropped_crashed;
          meter_.set_bits(item.bits);
          meter_.note_event(EventType::kCrashDrop, item.from, item.to,
                            item.distance);
          meter_.clear_bits();
          break;
        default:
          if (assign_ranks) next->ranks.push_back(rank);
          if (out != nullptr) {
            out->push_back(
                {item.from, item.to, item.distance, std::move(item.msg)});
          }
          ++rank;
          break;
      }
    }
    round_deliveries_ = static_cast<std::size_t>(rank);
  }

  /// Merge the shards' Mode-B send logs into the frontend staging arrays,
  /// ordered by (delivery rank, per-handler issue index) — each log is
  /// already sorted by that key, so this is another tie-free S-way merge.
  void merge_send_logs() {
    for (Shard& shard : shards_) shard.log_cursor = 0;
    for (;;) {
      Shard* next = nullptr;
      for (Shard& shard : shards_) {
        if (shard.log_cursor >= shard.ops.size()) continue;
        if (next == nullptr || shard.ops[shard.log_cursor].ctx.key <
                                   next->ops[next->log_cursor].ctx.key) {
          next = &shard;
        }
      }
      if (next == nullptr) break;
      StagedOp op = std::move(next->ops[next->log_cursor++]);
      const std::uint32_t first = op.first;
      op.first = static_cast<std::uint32_t>(targets_.size());
      for (std::uint32_t i = 0; i < op.count; ++i)
        targets_.push_back(next->targets[first + i]);
      ops_.push_back(std::move(op));
    }
    for (Shard& shard : shards_) {
      shard.ops.clear();
      shard.targets.clear();
    }
  }

  const Topo& topo_;
  EnergyMeter meter_;
  WireFormat<Msg> wire_{};
  bool unbounded_broadcast_;
  DelayModel delays_;
  support::Rng delay_rng_;
  FaultInjector faults_;
  InvariantOracle* oracle_ = nullptr;
  std::size_t shard_count_;
  std::vector<std::uint32_t> node_shard_;  ///< node → shard (tile % shards)
  std::vector<Shard> shards_;
  support::WorkerPool pool_;
  // Frontend staging (issue order = replay order).
  std::vector<StagedOp> ops_;
  std::vector<Target> targets_;
  std::size_t staged_live_ = 0;  ///< staged deliveries that will route
  std::uint64_t seq_ = 0;        ///< global send sequence number
  std::size_t inflight_ = 0;
  std::size_t round_deliveries_ = 0;
  std::uint64_t now_ = 0;
};

}  // namespace emst::sim
