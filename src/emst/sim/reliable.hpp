// Reliable delivery over lossy channels (docs/ROBUSTNESS.md).
//
// Two faces of the same stop-and-wait ARQ protocol:
//
//  - `ReliableChannel<Msg>`: a message-level adapter over `Network<Msg>` for
//    actor-style drivers. Every logical send opens (or queues behind) a
//    stop-and-wait session on its directed link: DATA(seq) → ACK(seq), with
//    a retransmission timeout, exponential backoff, and a bounded retry
//    budget. Receivers suppress duplicate seqs (at-least-once delivery from
//    the channel becomes exactly-once toward the application, per link, in
//    send order). Every physical frame — retransmissions and ACKs included —
//    goes through the underlying Network, so it is charged to the meter and
//    exposed to the fault layer like any other transmission.
//
//  - `ArqLink`: the closed-form twin for the *driver*-based engines
//    (phase-synchronous GHS, tree collectives), which charge the meter
//    directly instead of exchanging real messages. `transmit()` simulates
//    one complete ARQ session for one logical unicast — drawing channel
//    fates from the shared `FaultInjector`, charging every DATA attempt and
//    every ACK at d^α — and reports whether the payload got through. The
//    per-attempt energy bill is identical to what ReliableChannel would pay
//    on the same fate sequence.
//
// Retry-state bookkeeping keys directed links into a FlatMap64 (same packed
// (u,v) scheme as the network's FIFO tracker).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/flat_map.hpp"

namespace emst::sim {

struct ArqOptions {
  bool enabled = false;
  /// Retransmissions allowed after the first attempt before giving up.
  std::uint32_t max_retries = 10;
  /// Initial retransmission timeout, in rounds. Must exceed the 2-round
  /// DATA+ACK round trip of the synchronous model.
  std::uint32_t rto_rounds = 3;
  /// Timeout multiplier per retry (capped at kRtoCap).
  std::uint32_t backoff = 2;

  static constexpr std::uint32_t kRtoCap = 64;
};

struct ArqStats {
  std::uint64_t data_sent = 0;        ///< first attempts
  std::uint64_t retransmissions = 0;  ///< timeout-driven re-sends
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates = 0;       ///< receiver-side suppressed re-deliveries
  std::uint64_t delivered = 0;        ///< payloads that reached the receiver
  std::uint64_t give_ups = 0;         ///< sessions that exhausted the budget
  std::uint64_t timeout_rounds = 0;   ///< rounds spent waiting on lost frames
  /// Wire bits of every DATA frame attempt (first sends and retransmissions;
  /// payload + kArqHeaderBits each) and of every ACK (header only). 0 when
  /// the payload type has no WireFormat — retry overhead is only measurable
  /// for messages with a codec.
  std::uint64_t data_bits = 0;
  std::uint64_t ack_bits = 0;

  ArqStats& operator+=(const ArqStats& rhs) noexcept {
    data_sent += rhs.data_sent;
    retransmissions += rhs.retransmissions;
    acks_sent += rhs.acks_sent;
    duplicates += rhs.duplicates;
    delivered += rhs.delivered;
    give_ups += rhs.give_ups;
    timeout_rounds += rhs.timeout_rounds;
    data_bits += rhs.data_bits;
    ack_bits += rhs.ack_bits;
    return *this;
  }
};

/// Outcome of one simulated ARQ session (one logical unicast).
struct ArqOutcome {
  bool delivered = false;  ///< payload reached the receiver at least once
  bool acked = false;      ///< sender received a confirmation
  std::uint32_t data_attempts = 0;
  std::uint32_t ack_attempts = 0;
  std::uint32_t extra_rounds = 0;  ///< timeout rounds beyond the ideal trip
};

/// Driver-side ARQ simulator; see the header comment. With `arq.enabled ==
/// false` it degrades to a single unreliable attempt; with a null/disabled
/// injector AND arq off it is exactly one charged unicast — the zero-cost
/// path the differential tests pin down.
class ArqLink {
 public:
  ArqLink() = default;
  ArqLink(FaultInjector* injector, ArqOptions arq)
      : injector_(injector != nullptr && injector->enabled() ? injector
                                                             : nullptr),
        arq_(arq) {}

  /// Simulate the full ARQ session for one logical unicast u→v over
  /// `distance`, charging every physical transmission to `meter`.
  ArqOutcome transmit(EnergyMeter& meter, graph::NodeId u, graph::NodeId v,
                      double distance);

  /// Forward driver round ticks to the shared fault clock.
  void advance_rounds(std::uint64_t k) noexcept {
    if (injector_ != nullptr) injector_->advance_rounds(k);
  }

  [[nodiscard]] const ArqStats& stats() const noexcept { return stats_; }
  [[nodiscard]] FaultInjector* injector() const noexcept { return injector_; }
  [[nodiscard]] const ArqOptions& options() const noexcept { return arq_; }

 private:
  FaultInjector* injector_ = nullptr;
  ArqOptions arq_{};
  ArqStats stats_;
};

/// One physical stop-and-wait frame on the wire: a header (ack flag +
/// sequence number = kArqHeaderBits) plus, for DATA frames, the payload.
/// Namespace-scope (rather than nested in ReliableChannel) so that
/// `WireFormat<ArqFrame<Msg>>` can be partially specialized — a nested
/// class is a non-deduced context.
template <typename Msg>
struct ArqFrame {
  bool ack = false;
  std::uint32_t seq = 0;
  Msg payload{};  ///< default-constructed for ACK frames
};

/// Frames of a measured payload type are measured too: header + payload for
/// DATA, header alone for ACKs. Unmeasured payloads leave the whole frame
/// unmeasured (0 bits), so ARQ over codec-less messages stays bit-silent.
template <typename Msg>
struct WireFormat<ArqFrame<Msg>> {
  static constexpr bool kMeasured = WireFormat<Msg>::kMeasured;
  WireFormat<Msg> payload{};

  [[nodiscard]] std::uint32_t bits(const ArqFrame<Msg>& frame) const noexcept {
    if constexpr (!kMeasured) {
      return 0;
    } else {
      return kArqHeaderBits + (frame.ack ? 0 : payload.bits(frame.payload));
    }
  }
};

/// Message-level reliable channel over `Network<Msg>`; see the header
/// comment. The API mirrors Network: send / collect_round / pending, with
/// `collect_round` returning application payloads (ACK traffic and duplicate
/// copies are consumed internally).
template <typename Msg, typename Topo = Topology>
class ReliableChannel {
 public:
  using Frame = ArqFrame<Msg>;

  ReliableChannel(const Topo& topo, geometry::PathLoss model = {},
                  DelayModel delays = {}, FaultModel faults = {},
                  ArqOptions arq = {}, Telemetry* telemetry = nullptr)
      : net_(topo, model, /*unbounded_broadcast=*/false, delays, faults,
             telemetry),
        arq_(arq) {
    EMST_ASSERT_MSG(arq.rto_rounds >= 2 + delays.max_extra_delay,
                    "RTO must exceed the DATA+ACK round trip or every "
                    "message retransmits spuriously");
  }

  /// Reliably send m from u to v. Messages on the same directed link are
  /// delivered in send order; across links no order is guaranteed.
  void send(graph::NodeId u, graph::NodeId v, Msg m) {
    Link& link = link_state(u, v);
    link.queue.push_back(std::move(m));
    if (!link.in_flight.has_value()) start_next(link);
  }

  /// Un-ACKed sessions (with remaining budget) or in-flight frames exist.
  [[nodiscard]] bool pending() const noexcept {
    return net_.pending() || active_sessions_ > 0;
  }

  /// Advance one round: pump the underlying network, consume protocol
  /// frames, fire retransmission timeouts, and return the new application
  /// deliveries (in the underlying network's deterministic order).
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    ++now_;
    std::vector<Delivery<Msg>> out;
    for (Delivery<Frame>& d : net_.collect_round()) {
      if (d.msg.ack) {
        on_ack(d.to, d.from, d.msg.seq);
      } else {
        on_data(d, out);
      }
    }
    fire_timeouts();
    return out;
  }

  [[nodiscard]] const ArqStats& stats() const noexcept { return stats_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return net_.meter(); }
  [[nodiscard]] const EnergyMeter& meter() const noexcept {
    return net_.meter();
  }
  [[nodiscard]] Network<Frame, Topo>& raw() noexcept { return net_; }
  /// Attach the invariant oracle: the underlying network checks its round
  /// hooks, and every application-facing delivery here is checked for
  /// per-link exactly-once (oracle.hpp).
  void attach_oracle(InvariantOracle* oracle) noexcept {
    oracle_ = oracle;
    net_.attach_oracle(oracle);
  }
  /// The payload's codec. Configure this (not the frame format) with the
  /// run's WireContext; the frame format adds the ARQ header on top.
  [[nodiscard]] WireFormat<Msg>& payload_wire_format() noexcept {
    return net_.wire_format().payload;
  }

 private:
  struct Link {
    graph::NodeId from = 0;
    graph::NodeId to = 0;
    // Sender half (frames we originate on this directed link).
    std::vector<Msg> queue;      ///< not-yet-started messages (FIFO)
    std::size_t queue_head = 0;
    std::optional<Msg> in_flight;
    std::uint32_t send_seq = 0;  ///< seq of the in-flight message
    std::uint32_t next_seq = 0;  ///< seq to assign to the next message
    std::uint32_t retries = 0;
    std::uint32_t rto = 0;
    std::uint64_t deadline = 0;
    // Receiver half (frames arriving over this directed link).
    std::uint32_t next_expected = 0;
  };

  Link& link_state(graph::NodeId u, graph::NodeId v) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    const auto slot = links_index_.find_or_insert(key, links_.size());
    if (slot.inserted) {
      links_.emplace_back();
      links_.back().from = u;
      links_.back().to = v;
    }
    return links_[*slot.value];
  }

  void start_next(Link& link) {
    if (link.queue_head >= link.queue.size()) {
      link.queue.clear();
      link.queue_head = 0;
      return;
    }
    link.in_flight = std::move(link.queue[link.queue_head++]);
    link.send_seq = link.next_seq++;
    link.retries = 0;
    link.rto = arq_.rto_rounds;
    link.deadline = now_ + link.rto;
    ++active_sessions_;
    ++stats_.data_sent;
    // Frames are flagged so the replayer can rebuild data_sent /
    // retransmissions / acks_sent; a suppressed send (crashed sender) still
    // counts because its kSuppress event carries the same flags (and bits).
    Frame frame{false, link.send_seq, *link.in_flight};
    stats_.data_bits += net_.wire_format().bits(frame);
    net_.meter().set_arq_frame(/*retransmit=*/false);
    net_.unicast(link.from, link.to, std::move(frame));
    net_.meter().clear_arq_frame();
  }

  void finish_session(Link& link) {
    link.in_flight.reset();
    EMST_ASSERT(active_sessions_ > 0);
    --active_sessions_;
    start_next(link);
  }

  void on_data(Delivery<Frame>& d, std::vector<Delivery<Msg>>& out) {
    // The receiver ACKs every copy (the sender may be retrying because the
    // previous ACK was lost) but hands at most one to the application.
    Link& link = link_state(d.from, d.to);  // keyed by the DATA direction
    ++stats_.acks_sent;
    Frame ack{true, d.msg.seq, Msg{}};
    stats_.ack_bits += net_.wire_format().bits(ack);
    EnergyMeter& meter = net_.meter();
    const MsgKind payload_kind = meter.kind();
    meter.set_arq_frame(/*retransmit=*/false);
    meter.set_kind(MsgKind::kArqAck);
    net_.unicast(d.to, d.from, std::move(ack));
    meter.set_kind(payload_kind);
    meter.clear_arq_frame();
    if (d.msg.seq < link.next_expected) {
      ++stats_.duplicates;
      meter.note_event(EventType::kArqDuplicate, d.from, d.to);
      return;
    }
    // seq gaps happen only when the sender gave up on an earlier message;
    // the survivor is still new — deliver it.
    link.next_expected = d.msg.seq + 1;
    ++stats_.delivered;
    meter.note_event(EventType::kArqDeliver, d.from, d.to);
    if (oracle_ != nullptr)
      oracle_->on_arq_deliver(d.from, d.to, d.msg.seq, &meter);
    out.push_back({d.from, d.to, d.distance, std::move(d.msg.payload)});
  }

  void on_ack(graph::NodeId at, graph::NodeId from, std::uint32_t seq) {
    Link& link = link_state(at, from);  // our sender half toward `from`
    if (!link.in_flight.has_value() || seq != link.send_seq) return;  // stale
    finish_session(link);
  }

  void fire_timeouts() {
    for (Link& link : links_) {
      if (!link.in_flight.has_value() || now_ < link.deadline) continue;
      if (link.retries >= arq_.max_retries) {
        ++stats_.give_ups;
        net_.meter().note_event(EventType::kArqGiveUp, link.from, link.to);
        finish_session(link);
        continue;
      }
      ++link.retries;
      ++stats_.retransmissions;
      stats_.timeout_rounds += link.rto;
      net_.meter().note_event(EventType::kArqTimeout, link.from, link.to, 0.0,
                              link.rto);
      link.rto = std::min(link.rto * arq_.backoff, ArqOptions::kRtoCap);
      link.deadline = now_ + link.rto;
      Frame frame{false, link.send_seq, *link.in_flight};
      stats_.data_bits += net_.wire_format().bits(frame);
      net_.meter().set_arq_frame(/*retransmit=*/true);
      net_.unicast(link.from, link.to, std::move(frame));
      net_.meter().clear_arq_frame();
    }
  }

  Network<Frame, Topo> net_;
  ArqOptions arq_;
  ArqStats stats_;
  InvariantOracle* oracle_ = nullptr;
  support::FlatMap64 links_index_;  ///< packed directed link → links_ slot
  std::vector<Link> links_;
  std::size_t active_sessions_ = 0;
  std::uint64_t now_ = 0;
};

}  // namespace emst::sim
