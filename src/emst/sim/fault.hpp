// Fault injection for the simulator (docs/ROBUSTNESS.md).
//
// The paper's model (§II) assumes every transmission succeeds. Real sensor
// radios lose packets and whole nodes fail; this module is the departure
// point from the paper's reliable-delivery assumption. A `FaultModel`
// describes, deterministically from a seed:
//
//  - i.i.d. Bernoulli message loss (`loss`): every physical transmission is
//    dropped independently with this probability;
//  - per-link Gilbert–Elliott burst loss (`use_gilbert`): each directed link
//    carries a two-state Markov chain (Good/Bad) advanced once per
//    transmission on that link, with state-dependent loss probabilities —
//    the standard model for bursty wireless channels;
//  - scheduled node crash/recovery windows (`crashes`): a node is down for
//    every round r with `from <= r < until`; while down it neither sends
//    (its transmissions are suppressed, uncharged — a dead radio emits
//    nothing) nor receives (in-flight messages addressed to it are dropped
//    at delivery time).
//
// Energy accounting rule (the paper's cost model, applied honestly): a LOST
// message still charges the sender — the radio transmitted, the channel ate
// the packet. Only suppressed sends from crashed nodes are free.
//
// `FaultInjector` is the runtime: it owns the per-link Gilbert–Elliott
// states (in a FlatMap64, keyed by packed directed edge) and the fault
// clock. Channel fates are *counter-based*: the k-th physical transmission
// draws from an independent RNG stream derived from (seed, k) rather than
// from one shared sequential generator. Engines that process sends in
// global send order (`Network`, `ReferenceNetwork`) simply count calls;
// the sharded engine (`ShardedNetwork`) assigns the same global sequence
// numbers at the round barrier and evaluates the fates on worker threads —
// same (seed, k) pairs, same fates, regardless of thread count. Only the
// per-link burst chains are stateful, and per-link send order is preserved
// by every engine (FIFO links), so the chains advance identically too.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/graph/edge.hpp"
#include "emst/support/flat_map.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

class FaultController;  // chaos.hpp — adversarial, state-aware crash injection

/// `CrashWindow::until` value meaning "never recovers": permanent fail-stop.
inline constexpr std::uint64_t kCrashForever =
    std::numeric_limits<std::uint64_t>::max();

/// Node `node` is down for rounds [from, until). Overlapping windows for the
/// same node are allowed (union semantics); `until == from` is an empty
/// window (never down); `until == kCrashForever` is permanent fail-stop.
struct CrashWindow {
  graph::NodeId node = 0;
  std::uint64_t from = 0;
  std::uint64_t until = 0;
};

struct FaultModel {
  /// i.i.d. Bernoulli loss probability per physical transmission.
  double loss = 0.0;
  /// Enable the per-link Gilbert–Elliott chain (composes with `loss`: a
  /// message is dropped if EITHER mechanism fires).
  bool use_gilbert = false;
  double ge_good_to_bad = 0.05;  ///< P(Good→Bad) per transmission
  double ge_bad_to_good = 0.3;   ///< P(Bad→Good) per transmission
  double ge_loss_good = 0.0;     ///< loss probability while Good
  double ge_loss_bad = 0.8;      ///< loss probability while Bad
  std::vector<CrashWindow> crashes;
  /// Adversarial strategy (chaos.hpp) consulted as the fault clock advances;
  /// windows it injects behave exactly like entries of `crashes` and are
  /// recorded in `FaultInjector::injected_schedule()` so every adversarial
  /// run replays as a plain crash list. Non-owning; must outlive the run.
  FaultController* controller = nullptr;
  std::uint64_t seed = 0xFA011AULL;

  [[nodiscard]] bool enabled() const noexcept {
    return loss > 0.0 || use_gilbert || !crashes.empty() ||
           controller != nullptr;
  }
};

struct FaultStats {
  std::uint64_t lost = 0;           ///< dropped by the channel (charged)
  std::uint64_t dropped_crashed = 0;///< receiver down at delivery (charged)
  std::uint64_t suppressed = 0;     ///< sender down: no transmission (free)
};

/// Deterministic runtime for one FaultModel. Holds the fault clock (advanced
/// by whoever simulates time: `Network::collect_round` or the sync-GHS
/// driver's round ticks), the loss RNG, and per-link burst state. One
/// injector can span several protocol stages (EOPT shares one across Step 1,
/// the census and Step 2 so crash windows live on a single clock).
class FaultInjector {
 public:
  FaultInjector() = default;  ///< disabled: never drops, never crashes
  explicit FaultInjector(const FaultModel& model);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultModel& model() const noexcept { return model_; }

  /// Fault clock. `advance_to` is monotone (never rewinds). With a chaos
  /// controller attached, every round the clock steps through consults it
  /// exactly once — always from the serial section that owns the clock
  /// (round barriers, driver ticks), so injection order is deterministic
  /// for every engine and thread count.
  void advance_to(std::uint64_t round) {
    if (model_.controller == nullptr) {
      if (round > round_) round_ = round;
      return;
    }
    while (round_ < round) {
      ++round_;
      poll_controller();
    }
  }
  void advance_rounds(std::uint64_t k) {
    if (model_.controller == nullptr) {
      round_ += k;
      return;
    }
    while (k-- > 0) {
      ++round_;
      poll_controller();
    }
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  // -- Chaos-controller runtime (chaos.hpp, docs/ROBUSTNESS.md) ------------

  /// Ambient deployment facts for the controller's ChaosView. Engines (and
  /// the meter-direct sync-GHS driver) set these once before the run.
  void set_chaos_env(std::size_t node_count,
                     std::span<const geometry::Point2> points) noexcept {
    chaos_nodes_ = node_count;
    chaos_points_ = points;
  }
  /// Drivers that maintain explicit fragment state publish it here whenever
  /// it changes (sync GHS republishes at every phase boundary). Spans must
  /// stay valid until the next publish; drivers without fragment state
  /// simply never call this and strategies degrade deterministically.
  void publish_fragments(std::span<const graph::NodeId> leaders,
                         std::span<const graph::Edge> tree) noexcept {
    chaos_leaders_ = leaders;
    chaos_tree_ = tree;
  }
  /// Mark the next controller consult as a protocol phase boundary.
  void note_phase_boundary() noexcept { at_phase_boundary_ = true; }
  /// Engines report the in-flight message count before advancing the clock.
  void set_in_flight(std::size_t n) noexcept { in_flight_ = n; }

  /// Apply a crash window at runtime. Controller injections land here; the
  /// window takes effect for every `crashed_at` query from now on.
  void add_crash_window(const CrashWindow& w);

  /// Every window the controller injected, in injection order. Feeding this
  /// list back as a plain `FaultModel::crashes` schedule (or through a
  /// `ReplaySchedule` controller) reproduces the adversarial run (tested).
  [[nodiscard]] const std::vector<CrashWindow>& injected_schedule()
      const noexcept {
    return injected_;
  }
  /// Injected windows not yet consumed by the telemetry emitter (engines
  /// emit one kCrashInject event per window at the round barrier).
  [[nodiscard]] std::span<const CrashWindow> take_new_injections() noexcept {
    const std::size_t first = injection_emit_cursor_;
    injection_emit_cursor_ = injected_.size();
    return std::span<const CrashWindow>(injected_).subspan(first);
  }

  /// Is `u` down at the current fault clock?
  [[nodiscard]] bool crashed(graph::NodeId u) const noexcept {
    return crashed_at(u, round_);
  }
  [[nodiscard]] bool crashed_at(graph::NodeId u,
                                std::uint64_t round) const noexcept;
  /// Is `u` down at every round >= the current clock? (Permanent loss —
  /// drivers may garbage-collect state for such nodes.)
  [[nodiscard]] bool crashed_forever(graph::NodeId u) const noexcept;

  /// Draw the channel fate of the next physical transmission u→v, in global
  /// send order (advances the internal message counter and the link's
  /// Gilbert–Elliott state). Returns true if the message is LOST. Does not
  /// consider crashes — callers check those separately because crash drops
  /// happen at delivery time, not send time.
  [[nodiscard]] bool drop(graph::NodeId u, graph::NodeId v) {
    if (!enabled_) return false;
    return drop_at(seq_++, u, v, ge_state_);
  }

  /// Counter-based form: the fate of global transmission number `seq` on
  /// link u→v, with the per-link burst state held in `ge_state` (callers
  /// that partition links across threads pass their own map; every link
  /// must consistently live in exactly one map). Draws come from an RNG
  /// stream derived from (model seed, seq), so evaluation only needs the
  /// sequence number — not the history of other links' draws. Thread-safe
  /// for concurrent calls with distinct `ge_state` maps.
  [[nodiscard]] bool drop_at(std::uint64_t seq, graph::NodeId u,
                             graph::NodeId v, support::FlatMap64& ge_state);

  /// The internal send counter (next sequence number `drop` will consume).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return seq_; }

  FaultStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  /// Consult the controller for the round the clock just reached (fault.cpp
  /// — needs the ChaosView definition from chaos.hpp).
  void poll_controller();

  FaultModel model_;
  bool enabled_ = false;
  std::uint64_t seq_ = 0;  ///< global transmission counter (drop() calls)
  std::uint64_t round_ = 0;
  /// Per-directed-link Gilbert–Elliott state: key = (u<<32)|v (never 0 since
  /// u != v), value = 1 while Bad. Grows only — FlatMap64 territory.
  support::FlatMap64 ge_state_;
  /// Crash windows bucketed per node (built from the model; controller
  /// injections are appended at runtime; queried per message).
  std::vector<std::vector<CrashWindow>> windows_by_node_;
  std::uint32_t max_crash_node_ = 0;
  FaultStats stats_;
  // Chaos-controller state (all inert without a controller).
  std::size_t chaos_nodes_ = 0;
  std::span<const geometry::Point2> chaos_points_{};
  std::span<const graph::NodeId> chaos_leaders_{};
  std::span<const graph::Edge> chaos_tree_{};
  bool at_phase_boundary_ = false;
  std::size_t in_flight_ = 0;
  std::vector<CrashWindow> injected_;
  std::size_t injection_emit_cursor_ = 0;
  std::vector<CrashWindow> controller_scratch_;
};

}  // namespace emst::sim
