#include "emst/sim/implicit_topology.hpp"

#include <algorithm>

#include "emst/support/assert.hpp"

namespace emst::sim {

namespace {

// Per-thread neighbour scratch. The sharded engine stages broadcasts from
// worker threads, so the buffer cannot be a per-topology member without a
// lock on the hottest path in the simulator.
std::vector<graph::Neighbor>& tls_scratch() {
  static thread_local std::vector<graph::Neighbor> scratch;
  return scratch;
}

[[nodiscard]] constexpr std::uint64_t pack_pair(graph::NodeId u,
                                                graph::NodeId v) noexcept {
  const graph::NodeId lo = u < v ? u : v;
  const graph::NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

ImplicitTopology::ImplicitTopology(std::vector<geometry::Point2> points,
                                   double max_radius)
    : points_(std::move(points)),
      max_radius_(max_radius),
      rmax_sq_(max_radius * max_radius) {
  EMST_ASSERT(max_radius_ > 0.0);
  grid_ = std::make_unique<spatial::CellGrid>(
      std::span<const geometry::Point2>(points_), max_radius_);
}

std::span<const graph::Neighbor> ImplicitTopology::fill_scratch(
    NodeId u, double radius, bool filter_by_weight) const {
  EMST_ASSERT(u < points_.size());
  auto& scratch = tls_scratch();
  scratch.clear();
  const geometry::Point2 p = points_[u];
  // Enumerate at the membership radius; the grid applies the exact
  // construction predicate distance_sq <= fl(max_radius²).
  grid_->for_each_within(p, max_radius_, [&](spatial::PointIndex v) {
    if (v == u) return;
    const double w = geometry::distance(points_[v], p);
    if (filter_by_weight && w > radius) return;  // second predicate
    scratch.push_back({v, w, graph::kNoEdgeIndex});
  });
  std::sort(scratch.begin(), scratch.end(),
            [](const graph::Neighbor& a, const graph::Neighbor& b) {
              if (a.w != b.w) return a.w < b.w;
              return a.id < b.id;
            });
  if (!edge_ranks_.empty()) {
    for (graph::Neighbor& nb : scratch) nb.edge_index = edge_rank(u, nb.id);
  }
  return {scratch.data(), scratch.size()};
}

std::span<const graph::Neighbor> ImplicitTopology::neighbors(NodeId u) const {
  // Membership only — no weight filter. sqrt rounding can put a member's w
  // a ulp above max_radius; the materialized neighbors(u) keeps such
  // entries, so the implicit walk must too.
  return fill_scratch(u, max_radius_, /*filter_by_weight=*/false);
}

std::span<const graph::Neighbor> ImplicitTopology::neighbors_within(
    NodeId u, double radius) const {
  return fill_scratch(u, radius, /*filter_by_weight=*/true);
}

std::vector<NodeId> ImplicitTopology::nodes_within(NodeId u,
                                                   double radius) const {
  EMST_ASSERT(u < points_.size());
  std::vector<NodeId> out;
  grid_->for_each_within(points_[u], radius, [&](spatial::PointIndex i) {
    if (i != u) out.push_back(i);
  });
  return out;
}

std::size_t ImplicitTopology::edge_count() const {
  if (edge_count_ != kUnknownEdgeCount) return edge_count_;
  std::size_t m = 0;
  for (NodeId u = 0; u < points_.size(); ++u) {
    grid_->for_each_within(points_[u], max_radius_,
                           [&](spatial::PointIndex v) { m += v > u; });
  }
  edge_count_ = m;
  return m;
}

void ImplicitTopology::ensure_edge_ranks() const {
  if (!edge_ranks_.empty()) return;
  std::vector<std::uint64_t>& ranks = edge_ranks_;
  ranks.reserve(edge_count());
  for (NodeId u = 0; u < points_.size(); ++u) {
    grid_->for_each_within(points_[u], max_radius_, [&](spatial::PointIndex v) {
      if (v > u) ranks.push_back(pack_pair(u, v));
    });
  }
  // Canonical (weight, u, v) order — the same total order AdjacencyList
  // sorts its edge store by, so ranks equal CSR edge indices.
  std::sort(ranks.begin(), ranks.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              const auto au = static_cast<NodeId>(a >> 32);
              const auto av = static_cast<NodeId>(a & 0xFFFFFFFFu);
              const auto bu = static_cast<NodeId>(b >> 32);
              const auto bv = static_cast<NodeId>(b & 0xFFFFFFFFu);
              const double wa = geometry::distance(points_[au], points_[av]);
              const double wb = geometry::distance(points_[bu], points_[bv]);
              if (wa != wb) return wa < wb;
              return a < b;  // packed compare == (u, v) lexicographic
            });
}

std::uint32_t ImplicitTopology::edge_rank(NodeId u, NodeId v) const {
  EMST_ASSERT_MSG(!edge_ranks_.empty(),
                  "edge_rank requires ensure_edge_ranks()");
  const std::uint64_t key = pack_pair(u, v);
  const auto ku = static_cast<NodeId>(key >> 32);
  const auto kv = static_cast<NodeId>(key & 0xFFFFFFFFu);
  const double kw = geometry::distance(points_[ku], points_[kv]);
  const auto it = std::lower_bound(
      edge_ranks_.begin(), edge_ranks_.end(), key,
      [&](std::uint64_t a, std::uint64_t b) {
        const auto au = static_cast<NodeId>(a >> 32);
        const auto av = static_cast<NodeId>(a & 0xFFFFFFFFu);
        const double wa = a == key ? kw
                                   : geometry::distance(points_[au], points_[av]);
        const auto bu = static_cast<NodeId>(b >> 32);
        const auto bv = static_cast<NodeId>(b & 0xFFFFFFFFu);
        const double wb = b == key ? kw
                                   : geometry::distance(points_[bu], points_[bv]);
        if (wa != wb) return wa < wb;
        return a < b;
      });
  EMST_ASSERT_MSG(it != edge_ranks_.end() && *it == key,
                  "edge_rank: pair is not an edge of the topology");
  return static_cast<std::uint32_t>(it - edge_ranks_.begin());
}

}  // namespace emst::sim
