#include "emst/sim/fault.hpp"

#include <algorithm>
#include <limits>

#include "emst/sim/chaos.hpp"

namespace emst::sim {

FaultInjector::FaultInjector(const FaultModel& model)
    : model_(model), enabled_(model.enabled()) {
  for (const CrashWindow& w : model_.crashes)
    max_crash_node_ = std::max(max_crash_node_, w.node);
  if (!model_.crashes.empty()) {
    windows_by_node_.resize(static_cast<std::size_t>(max_crash_node_) + 1);
    for (const CrashWindow& w : model_.crashes)
      windows_by_node_[w.node].push_back(w);
  }
}

bool FaultInjector::crashed_at(graph::NodeId u,
                               std::uint64_t round) const noexcept {
  if (u >= windows_by_node_.size()) return false;
  for (const CrashWindow& w : windows_by_node_[u]) {
    if (w.from <= round && round < w.until) return true;
  }
  return false;
}

bool FaultInjector::crashed_forever(graph::NodeId u) const noexcept {
  if (u >= windows_by_node_.size()) return false;
  for (const CrashWindow& w : windows_by_node_[u]) {
    if (w.from <= round_ && w.until == std::numeric_limits<std::uint64_t>::max())
      return true;
  }
  return false;
}

void FaultInjector::add_crash_window(const CrashWindow& w) {
  if (w.node >= windows_by_node_.size())
    windows_by_node_.resize(static_cast<std::size_t>(w.node) + 1);
  max_crash_node_ = std::max(max_crash_node_, w.node);
  windows_by_node_[w.node].push_back(w);
}

void FaultInjector::poll_controller() {
  FaultController* controller = model_.controller;
  if (controller == nullptr) return;
  ChaosView view;
  view.round = round_;
  view.at_phase_boundary = at_phase_boundary_;
  at_phase_boundary_ = false;
  view.node_count = chaos_nodes_;
  view.points = chaos_points_;
  view.leaders = chaos_leaders_;
  view.tree = chaos_tree_;
  view.in_flight = in_flight_;
  view.injector = this;
  controller_scratch_.clear();
  controller->on_round(view, controller_scratch_);
  for (CrashWindow w : controller_scratch_) {
    // An injected window starts no earlier than the round it was injected
    // in — the past already happened — and applies to real nodes only.
    if (chaos_nodes_ != 0 && w.node >= chaos_nodes_) continue;
    w.from = std::max(w.from, round_);
    if (w.until <= w.from) continue;
    add_crash_window(w);
    injected_.push_back(w);
  }
}

bool FaultInjector::drop_at(std::uint64_t seq, graph::NodeId u,
                            graph::NodeId v, support::FlatMap64& ge_state) {
  if (!enabled_) return false;
  // Per-message stream: every draw this transmission needs comes from an
  // independent generator keyed by (seed, seq). No draw here reads or
  // advances shared RNG state, so the fate of transmission k is a pure
  // function of (model, k, link burst state) — evaluable on any thread.
  support::Rng draw(support::Rng::stream_seed(model_.seed, seq));
  bool lost = false;
  if (model_.loss > 0.0) lost = draw.uniform() < model_.loss;
  if (model_.use_gilbert) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    const auto slot = ge_state.find_or_insert(key, 0);  // links start Good
    const bool bad = *slot.value != 0;
    const double p_loss = bad ? model_.ge_loss_bad : model_.ge_loss_good;
    if (p_loss > 0.0 && draw.uniform() < p_loss) lost = true;
    // Advance the chain once per transmission on this link.
    const double p_flip = bad ? model_.ge_bad_to_good : model_.ge_good_to_bad;
    if (p_flip > 0.0 && draw.uniform() < p_flip) *slot.value = bad ? 0 : 1;
  }
  return lost;
}

}  // namespace emst::sim
