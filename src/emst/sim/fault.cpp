#include "emst/sim/fault.hpp"

#include <algorithm>
#include <limits>

namespace emst::sim {

FaultInjector::FaultInjector(const FaultModel& model)
    : model_(model), enabled_(model.enabled()) {
  for (const CrashWindow& w : model_.crashes)
    max_crash_node_ = std::max(max_crash_node_, w.node);
  if (!model_.crashes.empty()) {
    windows_by_node_.resize(static_cast<std::size_t>(max_crash_node_) + 1);
    for (const CrashWindow& w : model_.crashes)
      windows_by_node_[w.node].push_back(w);
  }
}

bool FaultInjector::crashed_at(graph::NodeId u,
                               std::uint64_t round) const noexcept {
  if (u >= windows_by_node_.size()) return false;
  for (const CrashWindow& w : windows_by_node_[u]) {
    if (w.from <= round && round < w.until) return true;
  }
  return false;
}

bool FaultInjector::crashed_forever(graph::NodeId u) const noexcept {
  if (u >= windows_by_node_.size()) return false;
  for (const CrashWindow& w : windows_by_node_[u]) {
    if (w.from <= round_ && w.until == std::numeric_limits<std::uint64_t>::max())
      return true;
  }
  return false;
}

bool FaultInjector::drop_at(std::uint64_t seq, graph::NodeId u,
                            graph::NodeId v, support::FlatMap64& ge_state) {
  if (!enabled_) return false;
  // Per-message stream: every draw this transmission needs comes from an
  // independent generator keyed by (seed, seq). No draw here reads or
  // advances shared RNG state, so the fate of transmission k is a pure
  // function of (model, k, link burst state) — evaluable on any thread.
  support::Rng draw(support::Rng::stream_seed(model_.seed, seq));
  bool lost = false;
  if (model_.loss > 0.0) lost = draw.uniform() < model_.loss;
  if (model_.use_gilbert) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    const auto slot = ge_state.find_or_insert(key, 0);  // links start Good
    const bool bad = *slot.value != 0;
    const double p_loss = bad ? model_.ge_loss_bad : model_.ge_loss_good;
    if (p_loss > 0.0 && draw.uniform() < p_loss) lost = true;
    // Advance the chain once per transmission on this link.
    const double p_flip = bad ? model_.ge_bad_to_good : model_.ge_good_to_bad;
    if (p_flip > 0.0 && draw.uniform() < p_flip) *slot.value = bad ? 0 : 1;
  }
  return lost;
}

}  // namespace emst::sim
