// Tree collectives: metered broadcast-down and convergecast-up over a
// rooted forest — the communication patterns the paper's applications are
// built from (fragment-size census in EOPT Step 2, data aggregation §II,
// MST broadcast §II).
//
// Both primitives charge exactly one unicast per non-root node (i.e. one
// message per tree edge) and tick the meter by the forest depth — the
// synchronous schedule where each tree level acts in one round.
//
// Fault-aware mode (docs/ROBUSTNESS.md): pass an `ArqLink*` and every tree
// message runs a full stop-and-wait ARQ session instead of one ideal
// unicast. A session that gives up (retry budget exhausted, or an endpoint
// crashed) leaves the child/parent value untouched — the collective still
// completes, but its result is only as accurate as the deliveries that got
// through. Timeout rounds spent on retries are added to the meter's clock.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/topology.hpp"
#include "emst/support/assert.hpp"

namespace emst::sim {

/// Nodes ordered root→leaves (BFS-like: every node appears after its
/// parent), plus per-node depth. Computed once per collective schedule.
struct TreeSchedule {
  std::vector<NodeId> top_down;     ///< roots first, then by depth
  std::vector<std::size_t> depth;   ///< 0 for roots
  std::size_t max_depth = 0;
};

/// Build the schedule for a parent-pointer forest (parent[u] == kNoNode for
/// roots). Aborts on cycles (a parent array of a forest has none).
[[nodiscard]] inline TreeSchedule make_schedule(
    const std::vector<graph::NodeId>& parent) {
  const std::size_t n = parent.size();
  TreeSchedule schedule;
  schedule.depth.assign(n, static_cast<std::size_t>(-1));
  // Depth by chasing parents with memoization.
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> chain;
    NodeId v = u;
    while (schedule.depth[v] == static_cast<std::size_t>(-1)) {
      chain.push_back(v);
      if (parent[v] == graph::kNoNode) {
        schedule.depth[v] = 0;
        break;
      }
      v = parent[v];
      EMST_ASSERT_MSG(chain.size() <= n, "parent array contains a cycle");
    }
    while (!chain.empty()) {
      const NodeId w = chain.back();
      if (schedule.depth[w] == static_cast<std::size_t>(-1)) {
        schedule.depth[w] = schedule.depth[parent[w]] + 1;
      }
      schedule.max_depth = std::max(schedule.max_depth, schedule.depth[w]);
      chain.pop_back();
    }
  }
  schedule.top_down.resize(n);
  std::iota(schedule.top_down.begin(), schedule.top_down.end(), NodeId{0});
  std::stable_sort(schedule.top_down.begin(), schedule.top_down.end(),
                   [&](NodeId a, NodeId b) {
                     return schedule.depth[a] < schedule.depth[b];
                   });
  return schedule;
}

/// Broadcast a value down the forest: every non-root receives its parent's
/// (transformed) value. `fn(parent_value, child)` produces the child value.
/// Returns the per-node values; roots keep their entry from `root_values`.
template <typename T, typename Topo, typename Fn>
[[nodiscard]] std::vector<T> tree_broadcast(const Topo& topo,
                                            const std::vector<graph::NodeId>& parent,
                                            const TreeSchedule& schedule,
                                            std::vector<T> values, Fn&& fn,
                                            EnergyMeter& meter,
                                            ArqLink* link = nullptr) {
  EMST_ASSERT(parent.size() == topo.node_count());
  EMST_ASSERT(values.size() == topo.node_count());
  std::uint64_t extra_rounds = 0;
  for (const NodeId u : schedule.top_down) {
    if (parent[u] == graph::kNoNode) continue;
    if (link != nullptr) {
      const ArqOutcome out =
          link->transmit(meter, parent[u], u, topo.distance(parent[u], u));
      extra_rounds += out.extra_rounds;
      if (!out.delivered) continue;  // child keeps its stale/initial value
    } else {
      meter.charge_unicast(parent[u], u, topo.distance(parent[u], u));
    }
    values[u] = fn(values[parent[u]], u);
  }
  meter.tick_rounds(schedule.max_depth + extra_rounds);
  if (link != nullptr) link->advance_rounds(schedule.max_depth + extra_rounds);
  return values;
}

/// Convergecast up the forest: every non-root sends its aggregated subtree
/// value to its parent, which folds it with `combine(parent_acc, child_acc)`.
/// Returns per-node subtree aggregates (roots hold their tree's total).
template <typename T, typename Topo, typename Combine>
[[nodiscard]] std::vector<T> tree_convergecast(
    const Topo& topo, const std::vector<graph::NodeId>& parent,
    const TreeSchedule& schedule, std::vector<T> values, Combine&& combine,
    EnergyMeter& meter, ArqLink* link = nullptr) {
  EMST_ASSERT(parent.size() == topo.node_count());
  EMST_ASSERT(values.size() == topo.node_count());
  std::uint64_t extra_rounds = 0;
  // Leaves-first: iterate the top-down order backwards.
  for (auto it = schedule.top_down.rbegin(); it != schedule.top_down.rend();
       ++it) {
    const NodeId u = *it;
    if (parent[u] == graph::kNoNode) continue;
    if (link != nullptr) {
      const ArqOutcome out =
          link->transmit(meter, u, parent[u], topo.distance(u, parent[u]));
      extra_rounds += out.extra_rounds;
      if (!out.delivered) continue;  // parent never folds this subtree in
    } else {
      meter.charge_unicast(u, parent[u], topo.distance(u, parent[u]));
    }
    values[parent[u]] = combine(values[parent[u]], values[u]);
  }
  meter.tick_rounds(schedule.max_depth + extra_rounds);
  if (link != nullptr) link->advance_rounds(schedule.max_depth + extra_rounds);
  return values;
}

/// Parent-pointer forest from an edge list and explicit roots — convenience
/// for callers holding tree edges rather than parent arrays. Every node must
/// be reachable from some root.
[[nodiscard]] std::vector<graph::NodeId> forest_parents(
    std::size_t n, const std::vector<graph::Edge>& tree,
    const std::vector<graph::NodeId>& roots);

}  // namespace emst::sim
