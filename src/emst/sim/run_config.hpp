// Shared run configuration (docs/API_TOUR.md).
//
// The four algorithm drivers (sync GHS, EOPT, classic GHS, Co-NNT) used to
// carry their own copies of the same knobs — path loss, fault model, ARQ,
// per-node tracking — and benches/CLI special-cased each. `RunConfig` is the
// common base every options struct embeds (by inheritance, so existing
// `options.pathloss = ...` field access compiles unchanged), and the single
// place a caller wires telemetry into a run.
#pragma once

#include "emst/geometry/pathloss.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"

namespace emst::sim {

class InvariantOracle;  // oracle.hpp — runtime invariant checks

struct RunConfig {
  /// Energy cost model d^α (paper §II).
  geometry::PathLoss pathloss{};
  /// Message-loss / crash schedule (plus an optional chaos controller,
  /// chaos.hpp). `faults.enabled()` gates all fault-path work; a default
  /// model costs nothing. Classic GHS and Co-NNT accept crash-only models
  /// (fail-stop, survived by epoch restart — docs/ROBUSTNESS.md) and reject
  /// message-loss faults, which need the ARQ machinery they don't speak.
  FaultModel faults{};
  /// Stop-and-wait ARQ on logical unicasts (sync GHS / EOPT / census only).
  ArqOptions arq{};
  /// Maintain the per-node transmit-energy ledger (network-lifetime bound).
  bool track_per_node_energy = false;
  /// Accumulate the per-phase × per-kind EnergyBreakdown matrix.
  bool record_breakdown = false;
  /// Optional event hub; configure its sink/aggregation BEFORE the run (the
  /// meter snapshots activity at attach time). Null or inert = zero cost.
  Telemetry* telemetry = nullptr;
  /// Optional runtime invariant oracle (oracle.hpp): engines and drivers
  /// call its hooks at round/phase barriers. Null = zero cost (one pointer
  /// test per barrier); violations are recorded, never thrown.
  InvariantOracle* oracle = nullptr;
  /// Worker threads for the run. 0 or 1 = single-threaded. Drivers that run
  /// over a network engine pick `sim::ShardedNetwork` when threads > 1;
  /// meter-direct drivers parallelize their pure-compute stages. Results are
  /// bitwise-identical across thread counts (docs/PARALLEL.md).
  std::size_t threads = 0;
  /// Worker PROCESSES for the run. 0 (default) = in-process engines. Any
  /// value >= 1 makes the engine-driven drivers (classic GHS, the Co-NNT
  /// actor) run over `sim::DistributedNetwork` with that many forked rank
  /// processes and a real serialized wire; results are bitwise-identical to
  /// the serial engine at every rank count (docs/DISTRIBUTED.md). The
  /// choreographed drivers (sync GHS, EOPT) are meter-direct — no network
  /// engine — so ranks is a documented no-op for them, mirroring `threads`.
  /// Takes precedence over `threads` when both are set.
  std::size_t ranks = 0;
};

}  // namespace emst::sim
