#include "emst/sim/telemetry.hpp"

#include <cstdio>

namespace emst::sim {

std::string_view phase_tag_name(PhaseTag phase) {
  switch (phase) {
    case PhaseTag::kRun: return "run";
    case PhaseTag::kStep1: return "step1";
    case PhaseTag::kCensus: return "census";
    case PhaseTag::kStep2: return "step2";
    case PhaseTag::kCount: break;
  }
  return "?";
}

std::string_view msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kData: return "data";
    case MsgKind::kConnect: return "connect";
    case MsgKind::kInitiate: return "initiate";
    case MsgKind::kTest: return "test";
    case MsgKind::kAccept: return "accept";
    case MsgKind::kReject: return "reject";
    case MsgKind::kReport: return "report";
    case MsgKind::kChangeRoot: return "change_root";
    case MsgKind::kAnnounce: return "announce";
    case MsgKind::kCensus: return "census";
    case MsgKind::kRequest: return "request";
    case MsgKind::kReply: return "reply";
    case MsgKind::kConnection: return "connection";
    case MsgKind::kArqAck: return "arq_ack";
    case MsgKind::kCount: break;
  }
  return "?";
}

std::string_view event_type_name(EventType type) {
  switch (type) {
    case EventType::kUnicast: return "uni";
    case EventType::kBroadcast: return "bcast";
    case EventType::kLoss: return "loss";
    case EventType::kCrashDrop: return "crash";
    case EventType::kSuppress: return "sup";
    case EventType::kArqDeliver: return "adel";
    case EventType::kArqDuplicate: return "adup";
    case EventType::kArqGiveUp: return "agup";
    case EventType::kArqTimeout: return "atmo";
    case EventType::kRound: return "round";
    case EventType::kCrashInject: return "cinj";
    case EventType::kOracleViolation: return "oinv";
    case EventType::kCount: break;
  }
  return "?";
}

void JsonlTraceSink::on_event(const TelemetryEvent& event) {
  // One snprintf per event into a stack buffer: optional fields are elided
  // when at their defaults so idle-heavy traces stay small, and %.17g keeps
  // doubles exact across a JSONL round-trip (scripts/check_trace.py replays
  // the file and demands bitwise-equal energy totals).
  char buf[512];
  int len = std::snprintf(buf, sizeof(buf),
                          "{\"ev\":\"%.*s\",\"kind\":\"%.*s\","
                          "\"phase\":\"%.*s\",\"round\":%llu",
                          static_cast<int>(event_type_name(event.type).size()),
                          event_type_name(event.type).data(),
                          static_cast<int>(msg_kind_name(event.kind).size()),
                          msg_kind_name(event.kind).data(),
                          static_cast<int>(phase_tag_name(event.phase).size()),
                          phase_tag_name(event.phase).data(),
                          static_cast<unsigned long long>(event.round));
  auto append = [&](const char* fmt, auto... args) {
    if (len < 0 || len >= static_cast<int>(sizeof(buf))) return;
    const int wrote = std::snprintf(buf + len, sizeof(buf) - len, fmt, args...);
    if (wrote > 0) len += wrote;
  };
  if (event.from != kNoEventNode)
    append(",\"from\":%u", static_cast<unsigned>(event.from));
  if (event.to != kNoEventNode)
    append(",\"to\":%u", static_cast<unsigned>(event.to));
  if (event.receivers != 0)
    append(",\"receivers\":%u", static_cast<unsigned>(event.receivers));
  if (event.fragment != kNoEventNode)
    append(",\"fragment\":%u", static_cast<unsigned>(event.fragment));
  if (event.flags != 0)
    append(",\"flags\":%u", static_cast<unsigned>(event.flags));
  if (event.bits != 0)
    append(",\"bits\":%u", static_cast<unsigned>(event.bits));
  if (event.value != 0)
    append(",\"value\":%llu", static_cast<unsigned long long>(event.value));
  if (event.reach != 0.0) append(",\"reach\":%.17g", event.reach);
  if (event.energy != 0.0) append(",\"energy\":%.17g", event.energy);
  append("}");
  if (len > 0 && len < static_cast<int>(sizeof(buf))) {
    out_.write(buf, len);
    out_.put('\n');
  }
}

void TelemetryAggregate::touch(std::uint32_t node, std::uint64_t round) {
  // last_active_ stores round+1 so 0 can mean "never active".
  if (node >= last_active_.size()) return;
  if (last_active_[node] != round + 1) {
    last_active_[node] = round + 1;
    ++awake_rounds[node];
  }
}

void TelemetryAggregate::apply(const TelemetryEvent& event) {
  switch (event.type) {
    case EventType::kUnicast:
      if (event.from < node_energy.size()) node_energy[event.from] += event.energy;
      touch(event.from, event.round);
      touch(event.to, event.round);
      break;
    case EventType::kBroadcast:
      // Broadcast listeners are NOT awake: receiving costs nothing in the
      // paper's model (§II), only the sender spends the round transmitting.
      if (event.from < node_energy.size()) node_energy[event.from] += event.energy;
      touch(event.from, event.round);
      break;
    case EventType::kRound:
      rounds += event.value;
      break;
    default:
      break;  // fault / ARQ meta events carry no energy or activity
  }
}

}  // namespace emst::sim
