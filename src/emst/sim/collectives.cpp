#include "emst/sim/collectives.hpp"

#include <queue>

namespace emst::sim {

std::vector<graph::NodeId> forest_parents(std::size_t n,
                                          const std::vector<graph::Edge>& tree,
                                          const std::vector<graph::NodeId>& roots) {
  std::vector<std::vector<graph::NodeId>> adj(n);
  for (const graph::Edge& e : tree) {
    EMST_ASSERT(e.u < n && e.v < n);
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<graph::NodeId> parent(n, graph::kNoNode);
  std::vector<bool> visited(n, false);
  std::queue<graph::NodeId> frontier;
  for (const graph::NodeId root : roots) {
    EMST_ASSERT(root < n);
    if (visited[root]) continue;
    visited[root] = true;
    frontier.push(root);
  }
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    for (const graph::NodeId v : adj[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      parent[v] = u;
      frontier.push(v);
    }
  }
  for (std::size_t u = 0; u < n; ++u)
    EMST_ASSERT_MSG(visited[u], "every node must be reachable from a root");
  return parent;
}

}  // namespace emst::sim
