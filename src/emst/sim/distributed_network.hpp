// Process-level distributed simulation engine (docs/DISTRIBUTED.md).
//
// `DistributedNetwork<Msg>` is a drop-in replacement for `Network<Msg>`
// whose message plane runs in separate worker PROCESSES — one rank per
// grid-partition shard, each forked at construction and connected by a
// socketpair carrying serve-framed binary messages. It produces
// BITWISE-identical results to the serial engine — same delivery sequences,
// same meter totals (float addition order preserved), same telemetry event
// stream, same fault fates — at every rank count, by the same argument the
// sharded engine makes (sharded_network.hpp), with the shard moved across a
// real wire:
//
//  1. Partition. The ShardedNetwork grid: tiles round-robin onto R ranks,
//     a message lives with its RECEIVER's rank, so per-link state (FIFO
//     clamp, Gilbert–Elliott chains) is rank-private.
//  2. Per-rank calendar queues. Each rank process owns a D+1-bucket ring
//     (apps/rank_runner.cpp). Records arrive in global send-sequence order,
//     the rank drains its due bucket in stable by-receiver order, and the
//     parent's receiver-keyed R-way merge reconstructs the global
//     (receiver, sequence) delivery order tie-free.
//  3. Order-sensitive state stays in the parent. Charges, suppressions,
//     telemetry, drop events, crash classification, the fault clock, the
//     chaos controller, and the oracle all run in the parent's serial
//     sections; sends are staged and replayed through the ONE meter in
//     issue order. Ranks do only order-insensitive work: ingest, clamp,
//     counter-based fate draws, by-receiver ordering.
//  4. The wire is real. Payloads cross the boundary as proto-codec bytes
//     (`proto::DistMsgAdapter`): encoded at route time, decoded at the
//     merge — the in-memory object does NOT travel, so for measured
//     formats the bytes on the wire are the accounted bits rounded up to
//     bytes (asserted per message, both directions).
//
// Every parent↔rank exchange is a collective with a PARCOACH-style
// fingerprint: both sides chain an FNV-1a hash over every frame body in
// both directions, the sender's chain rides each frame, and the receiver
// compares after mixing. Any desynchronization — corrupted frame, skipped
// or repeated collective, rank restart — aborts with rank, round, and
// expected/actual fingerprints plus the recent collective log, instead of
// deadlocking at the barrier. A rank process death is detected as EOF and
// reported with the rank's exit status or signal; teardown closes channels
// and reaps every child (no zombies).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "emst/apps/rank_runner.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/serve/framing.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/topology.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

namespace dist {

/// One collective exchange remembered for desync diagnostics.
struct CollectiveLogEntry {
  std::uint8_t opcode = 0;
  std::uint64_t round = 0;
  std::uint32_t count = 0;
  std::uint64_t hash = 0;
};

/// The non-templated process plumbing behind `DistributedNetwork`: rank
/// lifecycle (socketpair + fork + reap), framed channel IO, and the fatal
/// diagnostic path. Lives in distributed_network.cpp so the sim library
/// never references the rank-runner symbol — the engine template injects
/// the child entry point from its instantiation site.
class ProcessGroup {
 public:
  using ChildEntry = std::function<int(int fd, std::size_t rank)>;

  ProcessGroup() = default;
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Fork `count` rank processes. Each child keeps only its own channel
  /// end, runs `entry(fd, rank)`, and `_exit`s with its return value.
  void spawn(std::size_t count, const ChildEntry& entry);
  /// Close every channel (ranks see EOF and exit) and reap every child.
  void shutdown() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return eps_.size(); }
  [[nodiscard]] int pid(std::size_t rank) const { return eps_[rank].pid; }

  /// Current round, included in every failure diagnostic.
  void set_round(std::uint64_t round) noexcept { round_ = round; }

  void send_frame(std::size_t rank, const std::vector<std::uint8_t>& body);
  [[nodiscard]] serve::Frame read_frame(std::size_t rank);
  void log_collective(std::size_t rank, std::uint8_t opcode,
                      std::uint64_t round, std::uint32_t count,
                      std::uint64_t hash);
  [[noreturn]] void fatal(std::size_t rank, const std::string& what);

  /// Transport totals, frame headers included (the bench's bytes-on-wire).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }

 private:
  static constexpr std::size_t kCollectiveLogSize = 8;

  struct Endpoint {
    int fd = -1;
    int pid = -1;
    serve::FrameBuffer in;
    std::array<CollectiveLogEntry, kCollectiveLogSize> log{};
    std::size_t log_next = 0;
  };

  std::vector<Endpoint> eps_;
  std::vector<std::uint8_t> frame_scratch_;
  std::uint64_t round_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace dist

/// Topo is either sim::Topology or sim::ImplicitTopology (topology.hpp).
/// Ranks never see the topology at all — senders compute every target and
/// distance, so each rank process is O(in-flight + links seen) regardless
/// of backend (the n=10^7 implicit-topology path adds no per-rank memory).
template <typename Msg, typename Topo = Topology>
class DistributedNetwork {
 public:
  /// Marker for `make_engine`: the trailing size parameter means rank
  /// processes, not shard threads.
  static constexpr bool kDistributedEngine = true;

  DistributedNetwork(const Topo& topo, geometry::PathLoss model = {},
                     bool unbounded_broadcast = false, DelayModel delays = {},
                     FaultModel faults = {}, Telemetry* telemetry = nullptr,
                     std::size_t ranks = 1)
      : topo_(topo),
        meter_(model),
        unbounded_broadcast_(unbounded_broadcast),
        delays_(delays),
        delay_rng_(delays.seed),
        faults_(faults),
        rank_count_(ranks == 0 ? 1 : ranks),
        mailboxes_(rank_count_),
        drained_(rank_count_),
        chains_(rank_count_, proto::kDistFingerprintSeed) {
    meter_.attach_telemetry(telemetry);
    build_partition();
    if (faults_.enabled())
      faults_.set_chaos_env(topo_.node_count(), topo_.points());
    // Fork the rank processes. Each gets the loss-channel slice of the
    // fault model (counter-based fates evaluate rank-side); crash windows
    // and the chaos controller stay here with the fault clock.
    apps::RankSpec spec;
    spec.ranks = rank_count_;
    spec.max_extra_delay = delays_.max_extra_delay;
    const FaultModel& fm = faults_.model();
    spec.loss = fm.loss;
    spec.use_gilbert = fm.use_gilbert;
    spec.ge_good_to_bad = fm.ge_good_to_bad;
    spec.ge_bad_to_good = fm.ge_bad_to_good;
    spec.ge_loss_good = fm.ge_loss_good;
    spec.ge_loss_bad = fm.ge_loss_bad;
    spec.fault_seed = fm.seed;
    group_.spawn(rank_count_, [spec](int fd, std::size_t r) {
      apps::RankSpec s = spec;
      s.rank = r;
      return apps::rank_main(fd, s);
    });
  }

  DistributedNetwork(const DistributedNetwork&) = delete;
  DistributedNetwork& operator=(const DistributedNetwork&) = delete;

  // -- Network facade ------------------------------------------------------

  /// Send m from u to v; delivered next round. Charges d(u,v)^α (at the
  /// next round barrier, in issue order — the meter context active NOW is
  /// captured with the send, exactly as if the charge had happened inline).
  void unicast(NodeId u, NodeId v, Msg m) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    stage_unicast(meter_context(), u, v, d, std::move(m));
  }

  /// Locally broadcast m from u at power radius `radius`. Charges radius^α.
  void broadcast(NodeId u, double radius, const Msg& m) {
    stage_broadcast(meter_context(), u, radius, Msg(m));
  }
  void broadcast(NodeId u, double radius, Msg&& m) {
    stage_broadcast(meter_context(), u, radius, std::move(m));
  }

  [[nodiscard]] bool pending() const noexcept {
    return staged_live_ > 0 || inflight_ > 0;
  }

  /// Advance to the next round and return the messages due for delivery,
  /// sorted by (receiver, global send sequence) — byte-identical to
  /// `Network::collect_round` on the same schedule, for every rank count.
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    flush_staged();
    begin_round();
    std::vector<Delivery<Msg>> out;
    exchange_round(&out);
    return out;
  }

  // -- Accessors (Network-compatible) -------------------------------------

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return faults_.stats();
  }
  /// Attach a runtime invariant oracle, checked at every round barrier
  /// (serial section). Null (the default) costs one pointer test per round.
  void attach_oracle(InvariantOracle* oracle) noexcept { oracle_ = oracle; }
  [[nodiscard]] InvariantOracle* oracle() const noexcept { return oracle_; }
  [[nodiscard]] std::size_t rank_count() const noexcept { return rank_count_; }
  [[nodiscard]] std::size_t rank_of(NodeId u) const { return node_rank_[u]; }
  /// The engine's message codec (wire.hpp) — same contract as
  /// Network::wire_format(). Configure before sending; staged sends capture
  /// their size at issue time and the payload is encoded under the context
  /// active at the barrier.
  [[nodiscard]] WireFormat<Msg>& wire_format() noexcept { return wire_; }
  [[nodiscard]] const WireFormat<Msg>& wire_format() const noexcept {
    return wire_;
  }

  // -- Distributed-specific introspection ----------------------------------

  /// Transport totals (frame headers + records + fingerprints), both
  /// directions — the bench's bytes-on-wire axis.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return group_.bytes_sent();
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return group_.bytes_received();
  }
  /// Sum of encoded payload bytes routed so far. For measured wire formats
  /// this equals the sum of ceil(bits/8) over every charged transmission
  /// (asserted per message at encode time).
  [[nodiscard]] std::uint64_t payload_bytes_sent() const noexcept {
    return payload_bytes_;
  }
  /// Rank process id, for fault-injection tests (kill a rank, observe the
  /// reported teardown).
  [[nodiscard]] int rank_pid(std::size_t rank) const {
    return group_.pid(rank);
  }

  // -- Test hooks (negative tests for the fingerprint contract) ------------

  /// Corrupt one byte of the next ROUND frame sent to `rank`, AFTER the
  /// parent has mixed its fingerprint — models wire corruption. The rank
  /// detects the mismatch and reports a desync instead of deadlocking.
  void test_corrupt_next_frame(std::size_t rank) { corrupt_rank_ = rank; }
  /// Advance the parent's chain for `rank` by one phantom mix AFTER the
  /// next ROUND frame is on the wire — models a collective the parent
  /// recorded but never exchanged (PARCOACH's mismatched-call bug class).
  /// The outgoing trailer is still consistent, so the rank accepts the
  /// frame; the divergence is caught by the PARENT when the rank's reply
  /// fingerprint fails to match.
  void test_skip_collective_mix(std::size_t rank) { skip_rank_ = rank; }

 private:
  static constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);
  /// Per-chunk record budget: chunk body stays within the serve frame cap.
  static constexpr std::size_t kChunkRecordBudget =
      proto::kDistMaxChunkBodyBytes - proto::kDistFrameFixedBytes;

  struct Target {
    NodeId to;
    double distance;
  };

  /// Meter context captured with each staged send (sharded_network.hpp's
  /// SendContext, minus the Mode-B merge key — the distributed engine only
  /// fronts the Network facade, where staging order IS issue order).
  struct SendContext {
    MsgKind kind = MsgKind::kData;
    PhaseTag phase = PhaseTag::kRun;
    std::uint8_t flags = 0;
    std::uint32_t fragment = kNoEventNode;
    std::uint32_t bits = 0;
  };

  /// One staged send (unicast or broadcast) awaiting the barrier replay.
  struct StagedOp {
    SendContext ctx;
    NodeId from = 0;
    double reach = 0.0;  ///< distance (unicast) or power radius (broadcast)
    std::uint32_t first = 0;  ///< targets range in targets_
    std::uint32_t count = 0;
    bool is_broadcast = false;
    bool suppressed = false;  ///< sender down at issue time (clock-stable)
    Msg msg{};
  };

  /// Outgoing mailbox for one rank: concatenated ROUND records, split into
  /// chunk-sized runs as they are appended (records never straddle frames).
  struct Mailbox {
    std::vector<std::vector<std::uint8_t>> full;  ///< complete chunk runs
    std::vector<std::uint32_t> full_counts;
    std::vector<std::uint8_t> cur;
    std::uint32_t cur_count = 0;
  };

  /// One record of a rank's drained reply, parsed and awaiting the merge.
  struct DrainedRec {
    NodeId from;
    NodeId to;
    double distance;
    std::uint32_t bits;
    bool lost;
    std::vector<std::uint8_t> payload;
  };

  struct DrainedList {
    std::vector<DrainedRec> items;
    std::size_t cursor = 0;
  };

  // -- Construction --------------------------------------------------------

  void build_partition() {
    // Identical to ShardedNetwork::build_partition: g×g tiles round-robin
    // onto ranks, a pure function of (points, rank count).
    std::size_t g = 1;
    while (g * g < rank_count_) ++g;
    const auto& points = topo_.points();
    node_rank_.resize(points.size());
    const double scale = static_cast<double>(g);
    auto cell = [g, scale](double coord) {
      const double scaled = coord * scale;
      if (!(scaled > 0.0)) return std::size_t{0};
      return std::min(static_cast<std::size_t>(scaled), g - 1);
    };
    for (std::size_t u = 0; u < points.size(); ++u) {
      const std::size_t tile = cell(points[u].x) + g * cell(points[u].y);
      node_rank_[u] = static_cast<std::uint32_t>(tile % rank_count_);
    }
  }

  // -- Staging (issue side — mirrors ShardedNetwork exactly) ---------------

  [[nodiscard]] SendContext meter_context() const noexcept {
    return {meter_.kind(), meter_.phase(), meter_.flags(), meter_.fragment(),
            0};
  }

  void stage_unicast(const SendContext& ctx, NodeId u, NodeId v, double d,
                     Msg m) {
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = d;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.count = 1;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    if (!op.suppressed) ++staged_live_;
    targets_.push_back({v, d});
    ops_.push_back(std::move(op));
  }

  void stage_broadcast(const SendContext& ctx, NodeId u, double radius,
                       Msg m) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = radius;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.is_broadcast = true;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    if (!op.suppressed) {
      // Same receiver enumeration as Network::broadcast_impl, including the
      // per-receiver distance recomputation (bitwise-equal charges depend
      // on identical inputs, not just identical sets).
      if (radius <= topo_.max_radius()) {
        for (const graph::Neighbor& nb : topo_.neighbors(u)) {
          if (nb.w <= radius)
            targets_.push_back({nb.id, topo_.distance(u, nb.id)});
          else
            break;
        }
      } else {
        for (const NodeId v : topo_.nodes_within(u, radius))
          targets_.push_back({v, topo_.distance(u, v)});
      }
      op.count = static_cast<std::uint32_t>(targets_.size()) - op.first;
    }
    staged_live_ += op.count;
    ops_.push_back(std::move(op));
  }

  // -- Barrier: serial charge replay + routing -----------------------------

  /// Replay the staging through the meter in issue order (the ONLY place
  /// charges, suppressions and their telemetry events happen — float
  /// accumulation order and event order match Network exactly), then
  /// encode each physical message once and route the bytes to the
  /// receiver's rank mailbox.
  void flush_staged() {
    if (ops_.empty()) return;
    const MsgKind kind0 = meter_.kind();
    const PhaseTag phase0 = meter_.phase();
    const std::uint8_t flags0 = meter_.flags();
    const std::uint32_t fragment0 = meter_.fragment();
    for (StagedOp& op : ops_) {
      meter_.set_kind(op.ctx.kind);
      meter_.set_phase(op.ctx.phase);
      meter_.set_flags(op.ctx.flags);
      meter_.set_fragment(op.ctx.fragment);
      meter_.set_bits(op.ctx.bits);
      if (op.suppressed) {
        ++faults_.stats().suppressed;
        meter_.note_event(EventType::kSuppress, op.from,
                          op.is_broadcast ? kNoEventNode
                                          : targets_[op.first].to,
                          op.reach);
        continue;
      }
      const std::vector<std::uint8_t>& payload =
          encode_payload(op.msg, op.ctx.bits);
      if (op.is_broadcast) {
        meter_.charge_broadcast(op.from, op.reach, op.count);
        for (std::uint32_t i = op.first; i < op.first + op.count; ++i)
          route(op.from, targets_[i].to, targets_[i].distance, op.ctx.bits,
                payload);
      } else {
        const Target& t = targets_[op.first];
        meter_.charge_unicast(op.from, t.to, t.distance);
        route(op.from, t.to, t.distance, op.ctx.bits, payload);
      }
    }
    meter_.set_kind(kind0);
    meter_.set_phase(phase0);
    meter_.set_flags(flags0);
    meter_.set_fragment(fragment0);
    // Network clears ambient bits after every send; end the replay in the
    // same state so later note_events stamp identically.
    meter_.clear_bits();
    ops_.clear();
    targets_.clear();
    staged_live_ = 0;
  }

  /// Encode through the DistMsgAdapter — the ONLY representation that
  /// crosses to the ranks and back; the original object never travels.
  /// For measured formats this is where bits-on-air == bytes-on-wire is
  /// enforced: the codec must produce exactly the accounted bit count.
  [[nodiscard]] const std::vector<std::uint8_t>& encode_payload(
      const Msg& m, std::uint32_t bits) {
    proto::BitWriter w;
    proto::DistMsgAdapter<Msg>::encode(m, w, wire_);
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT_MSG(w.bit_count() == bits,
                      "wire codec and energy accounting disagree on size");
      EMST_ASSERT(w.bytes().size() ==
                  (static_cast<std::size_t>(bits) + 7) / 8);
    }
    payload_scratch_ = w.bytes();
    return payload_scratch_;
  }

  void route(NodeId u, NodeId v, double d, std::uint32_t bits,
             const std::vector<std::uint8_t>& payload) {
    // Sequential delay draws in global send order — the exact stream
    // Network::enqueue consumes. The FIFO clamp is applied rank-side
    // (per-link state lives with the receiver's rank).
    std::uint64_t due = now_ + 1;
    if (delays_.max_extra_delay > 0)
      due += delay_rng_.uniform_int(delays_.max_extra_delay + 1);
    Mailbox& mb = mailboxes_[node_rank_[v]];
    const std::size_t rec = proto::kDistRoundRecordBytes + payload.size();
    EMST_ASSERT_MSG(rec <= kChunkRecordBudget, "message exceeds frame cap");
    if (mb.cur.size() + rec > kChunkRecordBudget) {
      mb.full.push_back(std::move(mb.cur));
      mb.full_counts.push_back(mb.cur_count);
      mb.cur.clear();
      mb.cur_count = 0;
    }
    proto::dist_put_u64(mb.cur, seq_++);
    proto::dist_put_u64(mb.cur, due);
    proto::dist_put_u32(mb.cur, u);
    proto::dist_put_u32(mb.cur, v);
    proto::dist_put_u64(mb.cur, std::bit_cast<std::uint64_t>(d));
    proto::dist_put_u32(mb.cur, bits);
    proto::dist_put_u32(mb.cur, static_cast<std::uint32_t>(payload.size()));
    mb.cur.insert(mb.cur.end(), payload.begin(), payload.end());
    ++mb.cur_count;
    ++inflight_;
    payload_bytes_ += payload.size();
  }

  void begin_round() {
    meter_.tick_round();
    ++now_;
    if (faults_.enabled()) {
      // Serial section: the chaos controller consult (and its injections)
      // happen before the exchange. `inflight_` counts routed,
      // not-yet-delivered messages — Network's pre-drain count.
      faults_.set_in_flight(inflight_);
      faults_.advance_to(now_);
      for (const CrashWindow& w : faults_.take_new_injections())
        meter_.note_event(EventType::kCrashInject, w.node, kNoEventNode, 0.0,
                          w.until);
    }
    if (oracle_ != nullptr) oracle_->on_round(now_, meter_);
  }

  // -- The round barrier: mailbox exchange over the wire -------------------

  void exchange_round(std::vector<Delivery<Msg>>* out) {
    group_.set_round(now_);
    // Send phase: every rank gets its ROUND frames (even when empty — the
    // empty frame IS the barrier tick that advances the rank's calendar
    // ring) before any reply is awaited, so ranks work concurrently.
    for (std::size_t r = 0; r < rank_count_; ++r) send_round(r);
    // Receive phase, in rank order (the merge is receiver-keyed, so the
    // collection order does not affect the output).
    for (std::size_t r = 0; r < rank_count_; ++r) receive_drained(r);
    merge_round(out);
  }

  void send_round(std::size_t rank) {
    Mailbox& mb = mailboxes_[rank];
    for (std::size_t c = 0; c < mb.full.size(); ++c)
      emit_chunk(rank, /*last=*/false, mb.full_counts[c], mb.full[c]);
    emit_chunk(rank, /*last=*/true, mb.cur_count, mb.cur);
    mb.full.clear();
    mb.full_counts.clear();
    mb.cur.clear();
    mb.cur_count = 0;
  }

  void emit_chunk(std::size_t rank, bool last, std::uint32_t count,
                  const std::vector<std::uint8_t>& records) {
    std::vector<std::uint8_t>& body = body_scratch_;
    body.clear();
    body.push_back(proto::kDistOpRound);
    body.push_back(last ? proto::kDistFlagLast : 0);
    proto::dist_put_u64(body, now_);
    proto::dist_put_u32(body, count);
    body.insert(body.end(), records.begin(), records.end());
    const std::uint64_t h = proto::dist_hash(body.data(), body.size());
    chains_[rank] = proto::dist_mix(chains_[rank], h);
    group_.log_collective(rank, proto::kDistOpRound, now_, count, h);
    if (corrupt_rank_ == rank) {
      body[2] ^= 0x01;  // hook: corrupt AFTER hashing — wire damage
      corrupt_rank_ = kNoRank;
    }
    proto::dist_put_u64(body, chains_[rank]);
    group_.send_frame(rank, body);
    if (skip_rank_ == rank) {
      // Hook: a phantom collective only the parent's bookkeeping saw.
      chains_[rank] = proto::dist_mix(chains_[rank], h);
      skip_rank_ = kNoRank;
    }
  }

  void receive_drained(std::size_t rank) {
    DrainedList& dl = drained_[rank];
    dl.items.clear();
    dl.cursor = 0;
    bool last = false;
    while (!last) {
      const serve::Frame frame = group_.read_frame(rank);
      const std::vector<std::uint8_t>& p = frame.payload;
      if (frame.version != proto::kDistProtocolVersion ||
          p.size() < proto::kDistFrameFixedBytes) {
        group_.fatal(rank, "malformed reply frame");
      }
      if (p[0] == proto::kDistOpDesync) {
        // The rank detected a fingerprint mismatch on OUR frame and
        // reported instead of hanging. Surface its view verbatim.
        const std::uint64_t round = proto::dist_get_u64(p.data() + 2);
        const std::uint64_t expected = proto::dist_get_u64(p.data() + 10);
        const std::uint64_t actual = proto::dist_get_u64(p.data() + 18);
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "collective fingerprint mismatch reported by rank at "
                      "round %llu: expected %016llx actual %016llx",
                      static_cast<unsigned long long>(round),
                      static_cast<unsigned long long>(expected),
                      static_cast<unsigned long long>(actual));
        group_.fatal(rank, msg);
      }
      if (p[0] != proto::kDistOpDrained ||
          p.size() < proto::kDistFrameFixedBytes +
                         proto::kDistFingerprintBytes) {
        group_.fatal(rank, "unexpected reply opcode");
      }
      last = (p[1] & proto::kDistFlagLast) != 0;
      const std::uint64_t round = proto::dist_get_u64(p.data() + 2);
      if (round != now_) group_.fatal(rank, "barrier round skew in reply");
      const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
      const std::uint64_t h = proto::dist_hash(p.data(), body_len);
      chains_[rank] = proto::dist_mix(chains_[rank], h);
      const std::uint32_t count = proto::dist_get_u32(p.data() + 10);
      group_.log_collective(rank, proto::kDistOpDrained, round, count, h);
      const std::uint64_t fp = proto::dist_get_u64(p.data() + body_len);
      if (fp != chains_[rank]) {
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "collective fingerprint mismatch in rank reply: "
                      "expected %016llx actual %016llx",
                      static_cast<unsigned long long>(chains_[rank]),
                      static_cast<unsigned long long>(fp));
        group_.fatal(rank, msg);
      }
      std::size_t off = proto::kDistFrameFixedBytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (off + proto::kDistDrainedRecordBytes > body_len)
          group_.fatal(rank, "truncated reply record");
        DrainedRec rec;
        rec.from = proto::dist_get_u32(&p[off]);
        rec.to = proto::dist_get_u32(&p[off + 4]);
        rec.distance =
            std::bit_cast<double>(proto::dist_get_u64(&p[off + 8]));
        rec.bits = proto::dist_get_u32(&p[off + 16]);
        rec.lost = p[off + 20] != 0;
        const std::uint32_t plen = proto::dist_get_u32(&p[off + 21]);
        off += proto::kDistDrainedRecordBytes;
        if (off + plen > body_len)
          group_.fatal(rank, "truncated reply payload");
        rec.payload.assign(p.begin() + static_cast<std::ptrdiff_t>(off),
                           p.begin() + static_cast<std::ptrdiff_t>(off + plen));
        off += plen;
        dl.items.push_back(std::move(rec));
      }
    }
  }

  // -- Barrier: serial merge -----------------------------------------------

  /// Walk the ranks' drained lists in global (receiver, sequence) order —
  /// receivers partition across ranks, so a receiver-keyed R-way merge is
  /// exact and tie-free. Drop events, crash classification (the fault
  /// clock lives here) and fault stats are emitted in the same interleaved
  /// order Network's delivery loop produces them; survivors decode from
  /// their wire bytes.
  void merge_round(std::vector<Delivery<Msg>>* out) {
    std::size_t total = 0;
    for (DrainedList& dl : drained_) total += dl.items.size();
    inflight_ -= total;
    out->reserve(total);
    for (;;) {
      DrainedList* next = nullptr;
      for (DrainedList& dl : drained_) {
        if (dl.cursor >= dl.items.size()) continue;
        if (next == nullptr ||
            dl.items[dl.cursor].to < next->items[next->cursor].to) {
          next = &dl;
        }
      }
      if (next == nullptr) break;
      DrainedRec& item = next->items[next->cursor++];
      if (faults_.enabled() && item.lost) {
        ++faults_.stats().lost;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kLoss, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        continue;
      }
      if (faults_.enabled() && faults_.crashed(item.to)) {
        ++faults_.stats().dropped_crashed;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kCrashDrop, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        continue;
      }
      proto::BitReader rdr(item.payload);
      Msg m = proto::DistMsgAdapter<Msg>::decode(rdr, wire_);
      if constexpr (WireFormat<Msg>::kMeasured) {
        EMST_ASSERT_MSG(rdr.bit_count() == item.bits,
                        "decode consumed a different size than accounted");
      }
      out->push_back({item.from, item.to, item.distance, std::move(m)});
    }
  }

  const Topo& topo_;
  EnergyMeter meter_;
  WireFormat<Msg> wire_{};
  bool unbounded_broadcast_;
  DelayModel delays_;
  support::Rng delay_rng_;
  FaultInjector faults_;
  InvariantOracle* oracle_ = nullptr;
  std::size_t rank_count_;
  std::vector<std::uint32_t> node_rank_;  ///< node → rank (tile % ranks)
  dist::ProcessGroup group_;
  std::vector<Mailbox> mailboxes_;
  std::vector<DrainedList> drained_;
  std::vector<std::uint64_t> chains_;  ///< per-rank fingerprint chains
  // Frontend staging (issue order = replay order).
  std::vector<StagedOp> ops_;
  std::vector<Target> targets_;
  std::vector<std::uint8_t> payload_scratch_;
  std::vector<std::uint8_t> body_scratch_;
  std::size_t staged_live_ = 0;  ///< staged deliveries that will route
  std::uint64_t seq_ = 0;        ///< global send sequence number
  std::size_t inflight_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::size_t corrupt_rank_ = kNoRank;
  std::size_t skip_rank_ = kNoRank;
};

}  // namespace emst::sim
