// Process-level distributed simulation engine (docs/DISTRIBUTED.md).
//
// `DistributedNetwork<Msg>` is a drop-in replacement for `Network<Msg>`
// whose message plane runs in separate worker PROCESSES — one rank per
// grid-partition shard, each forked at construction and connected by a
// socketpair carrying serve-framed binary messages. It produces
// BITWISE-identical results to the serial engine — same delivery sequences,
// same meter totals (float addition order preserved), same telemetry event
// stream, same fault fates — at every rank count, by the same argument the
// sharded engine makes (sharded_network.hpp), with the shard moved across a
// real wire:
//
//  1. Partition. The ShardedNetwork grid: tiles round-robin onto R ranks,
//     a message lives with its RECEIVER's rank, so per-link state (FIFO
//     clamp, Gilbert–Elliott chains) is rank-private.
//  2. Per-rank calendar queues. Each rank process owns a D+1-bucket ring
//     (apps/rank_runner.cpp). Records arrive in global send-sequence order,
//     the rank drains its due bucket in stable by-receiver order, and the
//     parent's receiver-keyed R-way merge reconstructs the global
//     (receiver, sequence) delivery order tie-free.
//  3. Order-sensitive state stays in the parent. Charges, suppressions,
//     telemetry, drop events, crash classification, the fault clock, the
//     chaos controller, and the oracle all run in the parent's serial
//     sections; sends are staged and replayed through the ONE meter in
//     issue order. Ranks do only order-insensitive work: ingest, clamp,
//     counter-based fate draws, by-receiver ordering.
//  4. The wire is real. Payloads cross the boundary as proto-codec bytes
//     (`proto::DistMsgAdapter`): encoded at route time, decoded at the
//     merge — the in-memory object does NOT travel, so for measured
//     formats the bytes on the wire are the accounted bits rounded up to
//     bytes (asserted per message, both directions).
//
// Every parent↔rank exchange is a collective with a PARCOACH-style
// fingerprint: both sides chain an FNV-1a hash over every frame body in
// both directions, the sender's chain rides each frame, and the receiver
// compares after mixing. Any desynchronization — corrupted frame, skipped
// or repeated collective, rank restart — aborts with rank, round, and
// expected/actual fingerprints plus the recent collective log, instead of
// deadlocking at the barrier. A rank process death is detected as EOF and
// reported with the rank's exit status or signal; teardown closes channels
// and reaps every child (no zombies).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "emst/apps/actor_rank.hpp"
#include "emst/apps/rank_runner.hpp"
#include "emst/proto/dist_wire.hpp"
#include "emst/sim/actor.hpp"
#include "emst/serve/framing.hpp"
#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/topology.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

namespace dist {

/// One collective exchange remembered for desync diagnostics.
struct CollectiveLogEntry {
  std::uint8_t opcode = 0;
  std::uint64_t round = 0;
  std::uint32_t count = 0;
  std::uint64_t hash = 0;
};

/// The non-templated process plumbing behind `DistributedNetwork`: rank
/// lifecycle (socketpair + fork + reap), framed channel IO, and the fatal
/// diagnostic path. Lives in distributed_network.cpp so the sim library
/// never references the rank-runner symbol — the engine template injects
/// the child entry point from its instantiation site.
class ProcessGroup {
 public:
  using ChildEntry = std::function<int(int fd, std::size_t rank)>;

  ProcessGroup() = default;
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Fork `count` rank processes. Each child keeps only its own channel
  /// end, runs `entry(fd, rank)`, and `_exit`s with its return value.
  void spawn(std::size_t count, const ChildEntry& entry);
  /// Close every channel (ranks see EOF and exit) and reap every child.
  void shutdown() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return eps_.size(); }
  [[nodiscard]] int pid(std::size_t rank) const { return eps_[rank].pid; }

  /// Current round, included in every failure diagnostic.
  void set_round(std::uint64_t round) noexcept { round_ = round; }

  void send_frame(std::size_t rank, const std::vector<std::uint8_t>& body);
  [[nodiscard]] serve::Frame read_frame(std::size_t rank);
  void log_collective(std::size_t rank, std::uint8_t opcode,
                      std::uint64_t round, std::uint32_t count,
                      std::uint64_t hash);
  [[noreturn]] void fatal(std::size_t rank, const std::string& what);

  /// Transport totals, frame headers included (the bench's bytes-on-wire).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }

 private:
  static constexpr std::size_t kCollectiveLogSize = 8;

  struct Endpoint {
    int fd = -1;
    int pid = -1;
    serve::FrameBuffer in;
    std::array<CollectiveLogEntry, kCollectiveLogSize> log{};
    std::size_t log_next = 0;
  };

  std::vector<Endpoint> eps_;
  std::vector<std::uint8_t> frame_scratch_;
  std::uint64_t round_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace dist

/// Topo is either sim::Topology or sim::ImplicitTopology (topology.hpp).
/// Ranks never see the topology at all — senders compute every target and
/// distance, so each rank process is O(in-flight + links seen) regardless
/// of backend (the n=10^7 implicit-topology path adds no per-rank memory).
template <typename Msg, typename Topo = Topology>
class DistributedNetwork {
 public:
  /// Marker for `make_engine`: the trailing size parameter means rank
  /// processes, not shard threads.
  static constexpr bool kDistributedEngine = true;

  DistributedNetwork(const Topo& topo, geometry::PathLoss model = {},
                     bool unbounded_broadcast = false, DelayModel delays = {},
                     FaultModel faults = {}, Telemetry* telemetry = nullptr,
                     std::size_t ranks = 1)
      : topo_(topo),
        meter_(model),
        unbounded_broadcast_(unbounded_broadcast),
        delays_(delays),
        delay_rng_(delays.seed),
        faults_(faults),
        rank_count_(ranks == 0 ? 1 : ranks),
        mailboxes_(rank_count_),
        drained_(rank_count_),
        chains_(rank_count_, proto::kDistFingerprintSeed) {
    meter_.attach_telemetry(telemetry);
    build_partition();
    if (faults_.enabled())
      faults_.set_chaos_env(topo_.node_count(), topo_.points());
    // Fork the rank processes. Each gets the loss-channel slice of the
    // fault model (counter-based fates evaluate rank-side); crash windows
    // and the chaos controller stay here with the fault clock.
    apps::RankSpec spec;
    spec.ranks = rank_count_;
    spec.max_extra_delay = delays_.max_extra_delay;
    const FaultModel& fm = faults_.model();
    spec.loss = fm.loss;
    spec.use_gilbert = fm.use_gilbert;
    spec.ge_good_to_bad = fm.ge_good_to_bad;
    spec.ge_bad_to_good = fm.ge_bad_to_good;
    spec.ge_loss_good = fm.ge_loss_good;
    spec.ge_loss_bad = fm.ge_loss_bad;
    spec.fault_seed = fm.seed;
    group_.spawn(rank_count_, [spec](int fd, std::size_t r) {
      apps::RankSpec s = spec;
      s.rank = r;
      return apps::rank_main(fd, s);
    });
  }

  DistributedNetwork(const DistributedNetwork&) = delete;
  DistributedNetwork& operator=(const DistributedNetwork&) = delete;

  // -- Network facade ------------------------------------------------------

  /// Send m from u to v; delivered next round. Charges d(u,v)^α (at the
  /// next round barrier, in issue order — the meter context active NOW is
  /// captured with the send, exactly as if the charge had happened inline).
  void unicast(NodeId u, NodeId v, Msg m) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    stage_unicast(meter_context(), u, v, d, std::move(m));
  }

  /// Locally broadcast m from u at power radius `radius`. Charges radius^α.
  void broadcast(NodeId u, double radius, const Msg& m) {
    stage_broadcast(meter_context(), u, radius, Msg(m));
  }
  void broadcast(NodeId u, double radius, Msg&& m) {
    stage_broadcast(meter_context(), u, radius, std::move(m));
  }

  [[nodiscard]] bool pending() const noexcept {
    return staged_live_ > 0 || inflight_ > 0;
  }

  /// Advance to the next round and return the messages due for delivery,
  /// sorted by (receiver, global send sequence) — byte-identical to
  /// `Network::collect_round` on the same schedule, for every rank count.
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    EMST_ASSERT_MSG(!actor_mode_,
                    "collect_round is the routing-placement barrier; actor "
                    "installs drive actor_collect_round");
    flush_staged();
    begin_round();
    std::vector<Delivery<Msg>> out;
    exchange_round(&out);
    return out;
  }

  // -- Actor placement: rank-resident execution ----------------------------
  //
  // `install_actor` switches the engine from ROUTING placement (ranks are
  // byte routers; every handler runs in the parent) to ACTOR placement: the
  // routing workers are torn down and actor workers are forked in their
  // place, each owning a replica of the actor's node states. From then on
  // the barrier verb is `actor_collect_round`: staged sends route exactly
  // as before, but the due deliveries are EXECUTED rank-side and only a
  // compact deterministic effect ledger comes home, which the parent
  // replays in the serial global order (docs/DISTRIBUTED.md §6). Bitwise
  // identity with the serial engines holds because every order-sensitive
  // consumer — meter, fault clock, telemetry, chaos controller, oracle —
  // still runs here, on the replayed stream.

  /// Fork actor workers carrying `actor`'s initial state (copy-on-write via
  /// fork — nothing topology-sized is serialized). Must run before any
  /// traffic; the fingerprint chains restart from the seed on both sides.
  /// Crash-only fault models only: loss fates are counter-draws in routing
  /// ranks, but an actor rank cannot execute a handler on a message whose
  /// fate it cannot decide locally without a loss-model mirror.
  template <typename Actor>
  void install_actor(const Actor& actor, bool faulty) {
    static_assert(NodeActorState<Actor>);
    EMST_ASSERT_MSG(!actor_mode_, "install_actor: actor already installed");
    EMST_ASSERT_MSG(now_ == 0 && seq_ == 0 && ops_.empty() && inflight_ == 0,
                    "install_actor must run before any traffic");
    const FaultModel& fm = faults_.model();
    EMST_ASSERT_MSG(fm.loss == 0.0 && !fm.use_gilbert,
                    "rank-resident actors support crash-only fault models");
    actor_mode_ = true;
    actor_drained_.resize(rank_count_);
    group_.shutdown();
    std::fill(chains_.begin(), chains_.end(), proto::kDistFingerprintSeed);
    // The rank-side crash mirror: static windows + seed from the model;
    // the chaos controller, stats and the authoritative clock stay here
    // (controller injections ship per round in the final ACTOR_ROUND
    // chunk).
    FaultModel mirror;
    mirror.crashes = fm.crashes;
    mirror.seed = fm.seed;
    const ActorTestHooks hooks = actor_hooks_;
    group_.spawn(rank_count_,
                 [this, actor, mirror, faulty, hooks](int fd, std::size_t r) {
                   apps::ActorRankCtx<Msg> ctx;
                   ctx.fd = fd;
                   ctx.rank = r;
                   ctx.max_extra_delay = delays_.max_extra_delay;
                   ctx.node_rank = node_rank_;
                   ctx.wire = &wire_;
                   ctx.faulty = faulty;
                   ctx.hooks = hooks;
                   Actor replica = actor;
                   FaultInjector m(mirror);
                   return apps::actor_rank_main(ctx, replica, m);
                 });
  }

  /// Pre-spawn test hooks for the actor workers (set BEFORE install_actor).
  void set_actor_test_hooks(const ActorTestHooks& hooks) {
    EMST_ASSERT(!actor_mode_);
    actor_hooks_ = hooks;
  }

  /// The actor-placement round barrier. Flushes the staged sends (charges,
  /// suppressions, routing — identical to routing placement), ticks the
  /// round, exchanges ACTOR_ROUND/ACTOR_DRAINED with every rank, and
  /// replays the returned effect ledger in the serial global order: crash
  /// classification first (pass A — drop events fire before any of this
  /// round's effects, like the serial drain), then the retries in the
  /// parent's deferred-model order (pass B), then the surviving deliveries
  /// in (receiver, sequence) merge order (pass C). `sink` observes the
  /// replay: on_send(dtag, reach) per send effect, on_note(node, a, b) per
  /// note — the driver's tallies, byte-identical to its serial env.
  template <typename Sink>
  ActorRoundInfo actor_collect_round(Sink& sink) {
    EMST_ASSERT(actor_mode_);
    flush_staged();
    begin_round();
    group_.set_round(now_);
    windows_scratch_.clear();
    proto::dist_put_u32(windows_scratch_, static_cast<std::uint32_t>(
                                              pending_window_ship_.size()));
    for (const CrashWindow& w : pending_window_ship_) {
      proto::dist_put_u32(windows_scratch_, w.node);
      proto::dist_put_u64(windows_scratch_, w.from);
      proto::dist_put_u64(windows_scratch_, w.until);
    }
    pending_window_ship_.clear();
    for (std::size_t r = 0; r < rank_count_; ++r) send_actor_round(r);
    for (std::size_t r = 0; r < rank_count_; ++r) receive_actor_ledger(r);
    return replay_actor_round(sink);
  }

  /// Execute one choreographed phase step on every rank (wakeups, epoch
  /// restarts, Co-NNT probe/connect/reset sweeps). `wire_list` is the
  /// explicit node list shipped to the ranks (kDistStepWakeupList; its
  /// ORDER is preserved — the serial driver iterates it as given);
  /// `expected` is the parent's independently computed global invocation
  /// order, against which the ACTOR_STEPPED groups are matched node-for-
  /// node. Per group: sink.on_step_node(node, flag), then the effects
  /// replay.
  template <typename Sink>
  void actor_step(std::uint8_t kind, std::uint64_t param,
                  std::span<const NodeId> wire_list,
                  std::span<const NodeId> expected, Sink& sink) {
    EMST_ASSERT(actor_mode_);
    group_.set_round(now_);
    const std::uint64_t fault_round = faults_.round();
    std::size_t idx = 0;
    bool more = false;
    do {
      const std::size_t n =
          std::min(wire_list.size() - idx, kStepNodesPerChunk);
      more = idx + n < wire_list.size();
      for (std::size_t r = 0; r < rank_count_; ++r) {
        std::vector<std::uint8_t>& body = body_scratch_;
        body.clear();
        body.push_back(proto::kDistOpActorStep);
        body.push_back(more ? 0 : proto::kDistFlagLast);
        proto::dist_put_u64(body, now_);
        body.push_back(kind);
        proto::dist_put_u64(body, param);
        proto::dist_put_u64(body, fault_round);
        proto::dist_put_u32(body, static_cast<std::uint32_t>(n));
        for (std::size_t i = 0; i < n; ++i)
          proto::dist_put_u32(body, wire_list[idx + i]);
        seal_parent_chunk(r, proto::kDistOpActorStep,
                          static_cast<std::uint32_t>(n));
      }
      idx += n;
    } while (more);
    if (kind == proto::kDistStepRestart) defer_fifo_.clear();
    for (std::size_t r = 0; r < rank_count_; ++r)
      receive_actor_groups(r, proto::kDistOpActorStepped);
    for (const NodeId u : expected) {
      ActorLedger& lg = actor_drained_[node_rank_[u]];
      EMST_ASSERT_MSG(lg.cursor < lg.groups.size(),
                      "actor step ledger shorter than the expected order");
      const ActorEntry& g = lg.groups[lg.cursor++];
      EMST_ASSERT_MSG(g.to == u, "actor step ledger order diverged");
      sink.on_step_node(u, g.status);
      replay_effects(u, g, sink);
    }
    for (const ActorLedger& lg : actor_drained_)
      EMST_ASSERT_MSG(lg.cursor == lg.groups.size(),
                      "actor step ledger longer than the expected order");
  }

  /// Ship every rank's node states home into `actor` (the parent's
  /// never-stepped replica) and return the summed rank-side handler/step
  /// invocation counter — the placement witness (> 0 rank-side while the
  /// parent replica stays at 0).
  template <typename Actor>
  std::uint64_t actor_harvest(Actor& actor) {
    EMST_ASSERT(actor_mode_);
    group_.set_round(now_);
    for (std::size_t r = 0; r < rank_count_; ++r) {
      std::vector<std::uint8_t>& body = body_scratch_;
      body.clear();
      body.push_back(proto::kDistOpActorHarvest);
      body.push_back(proto::kDistFlagLast);
      proto::dist_put_u64(body, now_);
      proto::dist_put_u32(body, 0);
      seal_parent_chunk(r, proto::kDistOpActorHarvest, 0);
    }
    std::uint64_t total = 0;
    std::vector<std::uint8_t> image;
    for (std::size_t r = 0; r < rank_count_; ++r) {
      bool last = false;
      while (!last) {
        std::vector<std::uint8_t> p;
        std::uint32_t count = 0;
        last = read_reply_chunk(r, proto::kDistOpActorHarvested, &p, &count);
        const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
        const std::uint8_t* ptr = p.data() + proto::kDistFrameFixedBytes;
        const std::uint8_t* end = p.data() + body_len;
        for (std::uint32_t i = 0; i < count; ++i) {
          if (end - ptr <
              static_cast<std::ptrdiff_t>(proto::kDistHarvestNodeFixedBytes))
            group_.fatal(r, "truncated harvest group");
          const NodeId u = proto::dist_get_u32(ptr);
          const std::uint32_t nbytes = proto::dist_get_u32(ptr + 4);
          ptr += proto::kDistHarvestNodeFixedBytes;
          if (end - ptr < static_cast<std::ptrdiff_t>(nbytes))
            group_.fatal(r, "truncated harvest state");
          EMST_ASSERT(node_rank_[u] == r);
          image.assign(ptr, ptr + nbytes);
          proto::BitReader rdr(image);
          actor.decode_node(u, rdr);
          ptr += nbytes;
        }
        if (last) {
          if (end - ptr < 8) group_.fatal(r, "truncated harvest counter");
          total += proto::dist_get_u64(ptr);
          ptr += 8;
        }
        if (ptr != end) group_.fatal(r, "trailing bytes in harvest chunk");
      }
    }
    return total;
  }

  /// Size of the parent's deferred-queue model (== the summed rank FIFOs);
  /// the actor drivers' stall detection reads it like the serial deferred
  /// vector's size.
  [[nodiscard]] std::size_t actor_deferred_size() const noexcept {
    return defer_fifo_.size();
  }

  // -- Accessors (Network-compatible) -------------------------------------

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return faults_.stats();
  }
  /// Attach a runtime invariant oracle, checked at every round barrier
  /// (serial section). Null (the default) costs one pointer test per round.
  void attach_oracle(InvariantOracle* oracle) noexcept { oracle_ = oracle; }
  [[nodiscard]] InvariantOracle* oracle() const noexcept { return oracle_; }
  [[nodiscard]] std::size_t rank_count() const noexcept { return rank_count_; }
  [[nodiscard]] std::size_t rank_of(NodeId u) const { return node_rank_[u]; }
  /// The engine's message codec (wire.hpp) — same contract as
  /// Network::wire_format(). Configure before sending; staged sends capture
  /// their size at issue time and the payload is encoded under the context
  /// active at the barrier.
  [[nodiscard]] WireFormat<Msg>& wire_format() noexcept { return wire_; }
  [[nodiscard]] const WireFormat<Msg>& wire_format() const noexcept {
    return wire_;
  }

  // -- Distributed-specific introspection ----------------------------------

  /// Transport totals (frame headers + records + fingerprints), both
  /// directions — the bench's bytes-on-wire axis.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return group_.bytes_sent();
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return group_.bytes_received();
  }
  /// Sum of encoded payload bytes routed so far. For measured wire formats
  /// this equals the sum of ceil(bits/8) over every charged transmission
  /// (asserted per message at encode time).
  [[nodiscard]] std::uint64_t payload_bytes_sent() const noexcept {
    return payload_bytes_;
  }
  /// Rank process id, for fault-injection tests (kill a rank, observe the
  /// reported teardown).
  [[nodiscard]] int rank_pid(std::size_t rank) const {
    return group_.pid(rank);
  }

  // -- Test hooks (negative tests for the fingerprint contract) ------------

  /// Corrupt one byte of the next ROUND frame sent to `rank`, AFTER the
  /// parent has mixed its fingerprint — models wire corruption. The rank
  /// detects the mismatch and reports a desync instead of deadlocking.
  void test_corrupt_next_frame(std::size_t rank) { corrupt_rank_ = rank; }
  /// Advance the parent's chain for `rank` by one phantom mix AFTER the
  /// next ROUND frame is on the wire — models a collective the parent
  /// recorded but never exchanged (PARCOACH's mismatched-call bug class).
  /// The outgoing trailer is still consistent, so the rank accepts the
  /// frame; the divergence is caught by the PARENT when the rank's reply
  /// fingerprint fails to match.
  void test_skip_collective_mix(std::size_t rank) { skip_rank_ = rank; }

 private:
  static constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);
  /// Per-chunk record budget: chunk body stays within the serve frame cap.
  static constexpr std::size_t kChunkRecordBudget =
      proto::kDistMaxChunkBodyBytes - proto::kDistFrameFixedBytes;

  struct Target {
    NodeId to;
    double distance;
  };

  /// Meter context captured with each staged send (sharded_network.hpp's
  /// SendContext, minus the Mode-B merge key — the distributed engine only
  /// fronts the Network facade, where staging order IS issue order).
  struct SendContext {
    MsgKind kind = MsgKind::kData;
    PhaseTag phase = PhaseTag::kRun;
    std::uint8_t flags = 0;
    std::uint32_t fragment = kNoEventNode;
    std::uint32_t bits = 0;
  };

  /// One staged send (unicast or broadcast) awaiting the barrier replay.
  struct StagedOp {
    SendContext ctx;
    NodeId from = 0;
    double reach = 0.0;  ///< distance (unicast) or power radius (broadcast)
    std::uint32_t first = 0;  ///< targets range in targets_
    std::uint32_t count = 0;
    bool is_broadcast = false;
    bool suppressed = false;  ///< sender down at issue time (clock-stable)
    Msg msg{};
    /// Actor-mode replay: the payload already crossed the wire once (encoded
    /// rank-side by RankActorEnv), so the replayed send re-stages the exact
    /// bytes instead of re-encoding the in-memory object it never had.
    std::vector<std::uint8_t> raw;
    bool raw_payload = false;
  };

  /// Outgoing mailbox for one rank: concatenated ROUND records, packed into
  /// one chunk-sized run (records never straddle frames). A run that fills
  /// goes on the wire IMMEDIATELY (route()), overlapping the barrier's send
  /// half with the parent's remaining serial work; only the final, partial
  /// run waits for the barrier.
  struct Mailbox {
    std::vector<std::uint8_t> cur;
    std::uint32_t cur_count = 0;
  };

  /// One record of a rank's drained reply, parsed and awaiting the merge.
  struct DrainedRec {
    NodeId from;
    NodeId to;
    double distance;
    std::uint32_t bits;
    bool lost;
    std::vector<std::uint8_t> payload;
  };

  struct DrainedList {
    std::vector<DrainedRec> items;
    std::size_t cursor = 0;
  };

  /// Node capacity of one ACTOR_STEP chunk (wire lists chunk like records).
  static constexpr std::size_t kStepNodesPerChunk =
      (proto::kDistMaxChunkBodyBytes - proto::kDistStepFixedBytes) / 4;

  /// One parsed actor-ledger entry (retry, delivery, or step group — the
  /// field subset in use depends on the tag). Effect bytes are pointers
  /// into the retained chunk payloads, not copies.
  struct ActorEntry {
    NodeId from = 0;
    NodeId to = 0;  ///< receiver / retried node / stepped node
    double distance = 0.0;
    std::uint32_t bits = 0;
    std::uint8_t status = 0;  ///< delivery status / retry redeferred / flag
    std::uint16_t neffects = 0;
    const std::uint8_t* eff = nullptr;
    const std::uint8_t* eff_end = nullptr;
  };

  /// One rank's parsed actor reply (drained ledger or step groups), plus
  /// the owning chunk buffers the entries point into.
  struct ActorLedger {
    std::vector<std::vector<std::uint8_t>> chunks;
    std::vector<ActorEntry> retries;     ///< rank-local FIFO order
    std::vector<ActorEntry> deliveries;  ///< ascending-receiver order
    std::vector<ActorEntry> groups;      ///< step groups, rank-local order
    std::size_t retry_cursor = 0;
    std::size_t cursor = 0;
    void reset() {
      chunks.clear();
      retries.clear();
      deliveries.clear();
      groups.clear();
      retry_cursor = 0;
      cursor = 0;
    }
  };

  // -- Construction --------------------------------------------------------

  void build_partition() {
    // Identical to ShardedNetwork::build_partition: g×g tiles round-robin
    // onto ranks, a pure function of (points, rank count).
    std::size_t g = 1;
    while (g * g < rank_count_) ++g;
    const auto& points = topo_.points();
    node_rank_.resize(points.size());
    const double scale = static_cast<double>(g);
    auto cell = [g, scale](double coord) {
      const double scaled = coord * scale;
      if (!(scaled > 0.0)) return std::size_t{0};
      return std::min(static_cast<std::size_t>(scaled), g - 1);
    };
    for (std::size_t u = 0; u < points.size(); ++u) {
      const std::size_t tile = cell(points[u].x) + g * cell(points[u].y);
      node_rank_[u] = static_cast<std::uint32_t>(tile % rank_count_);
    }
  }

  // -- Staging (issue side — mirrors ShardedNetwork exactly) ---------------

  [[nodiscard]] SendContext meter_context() const noexcept {
    return {meter_.kind(), meter_.phase(), meter_.flags(), meter_.fragment(),
            0};
  }

  void stage_unicast(const SendContext& ctx, NodeId u, NodeId v, double d,
                     Msg m) {
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = d;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.count = 1;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    if (!op.suppressed) ++staged_live_;
    targets_.push_back({v, d});
    ops_.push_back(std::move(op));
  }

  void stage_broadcast(const SendContext& ctx, NodeId u, double radius,
                       Msg m) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    StagedOp op;
    op.ctx = ctx;
    op.ctx.bits = wire_.bits(m);
    op.from = u;
    op.reach = radius;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.is_broadcast = true;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.msg = std::move(m);
    if (!op.suppressed) {
      // Same receiver enumeration as Network::broadcast_impl, including the
      // per-receiver distance recomputation (bitwise-equal charges depend
      // on identical inputs, not just identical sets).
      if (radius <= topo_.max_radius()) {
        for (const graph::Neighbor& nb : topo_.neighbors(u)) {
          if (nb.w <= radius)
            targets_.push_back({nb.id, topo_.distance(u, nb.id)});
          else
            break;
        }
      } else {
        for (const NodeId v : topo_.nodes_within(u, radius))
          targets_.push_back({v, topo_.distance(u, v)});
      }
      op.count = static_cast<std::uint32_t>(targets_.size()) - op.first;
    }
    staged_live_ += op.count;
    ops_.push_back(std::move(op));
  }

  // -- Actor-replay staging (raw payload bytes; ambient meter context) ------

  /// Stage a replayed unicast effect. The context is captured from the
  /// AMBIENT meter — replay_effects set kind/fragment from the effect
  /// record just before, reproducing the serial env's set-then-send
  /// sequence — and the charge distance is recomputed from the parent's
  /// topology exactly like the serial engine's unicast.
  void stage_raw_unicast(NodeId u, NodeId v, std::uint32_t bits,
                         const std::uint8_t* payload, std::uint32_t plen) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT(plen == (static_cast<std::size_t>(bits) + 7) / 8);
    }
    StagedOp op;
    op.ctx = meter_context();
    op.ctx.bits = bits;
    op.from = u;
    op.reach = d;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.count = 1;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.raw_payload = true;
    op.raw.assign(payload, payload + plen);
    if (!op.suppressed) ++staged_live_;
    targets_.push_back({v, d});
    ops_.push_back(std::move(op));
  }

  /// Stage a replayed broadcast effect — same receiver enumeration and
  /// distance recomputation as stage_broadcast.
  void stage_raw_broadcast(NodeId u, double radius, std::uint32_t bits,
                           const std::uint8_t* payload, std::uint32_t plen) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT(plen == (static_cast<std::size_t>(bits) + 7) / 8);
    }
    StagedOp op;
    op.ctx = meter_context();
    op.ctx.bits = bits;
    op.from = u;
    op.reach = radius;
    op.first = static_cast<std::uint32_t>(targets_.size());
    op.is_broadcast = true;
    op.suppressed = faults_.enabled() && faults_.crashed(u);
    op.raw_payload = true;
    op.raw.assign(payload, payload + plen);
    if (!op.suppressed) {
      if (radius <= topo_.max_radius()) {
        for (const graph::Neighbor& nb : topo_.neighbors(u)) {
          if (nb.w <= radius)
            targets_.push_back({nb.id, topo_.distance(u, nb.id)});
          else
            break;
        }
      } else {
        for (const NodeId v : topo_.nodes_within(u, radius))
          targets_.push_back({v, topo_.distance(u, v)});
      }
      op.count = static_cast<std::uint32_t>(targets_.size()) - op.first;
    }
    staged_live_ += op.count;
    ops_.push_back(std::move(op));
  }

  // -- Barrier: serial charge replay + routing -----------------------------

  /// Replay the staging through the meter in issue order (the ONLY place
  /// charges, suppressions and their telemetry events happen — float
  /// accumulation order and event order match Network exactly), then
  /// encode each physical message once and route the bytes to the
  /// receiver's rank mailbox.
  void flush_staged() {
    if (ops_.empty()) return;
    const MsgKind kind0 = meter_.kind();
    const PhaseTag phase0 = meter_.phase();
    const std::uint8_t flags0 = meter_.flags();
    const std::uint32_t fragment0 = meter_.fragment();
    for (StagedOp& op : ops_) {
      meter_.set_kind(op.ctx.kind);
      meter_.set_phase(op.ctx.phase);
      meter_.set_flags(op.ctx.flags);
      meter_.set_fragment(op.ctx.fragment);
      meter_.set_bits(op.ctx.bits);
      if (op.suppressed) {
        ++faults_.stats().suppressed;
        meter_.note_event(EventType::kSuppress, op.from,
                          op.is_broadcast ? kNoEventNode
                                          : targets_[op.first].to,
                          op.reach);
        continue;
      }
      const std::vector<std::uint8_t>& payload =
          op.raw_payload ? op.raw : encode_payload(op.msg, op.ctx.bits);
      if (op.is_broadcast) {
        meter_.charge_broadcast(op.from, op.reach, op.count);
        for (std::uint32_t i = op.first; i < op.first + op.count; ++i)
          route(op.from, targets_[i].to, targets_[i].distance, op.ctx.bits,
                payload);
      } else {
        const Target& t = targets_[op.first];
        meter_.charge_unicast(op.from, t.to, t.distance);
        route(op.from, t.to, t.distance, op.ctx.bits, payload);
      }
    }
    meter_.set_kind(kind0);
    meter_.set_phase(phase0);
    meter_.set_flags(flags0);
    meter_.set_fragment(fragment0);
    // Network clears ambient bits after every send; end the replay in the
    // same state so later note_events stamp identically.
    meter_.clear_bits();
    ops_.clear();
    targets_.clear();
    staged_live_ = 0;
  }

  /// Encode through the DistMsgAdapter — the ONLY representation that
  /// crosses to the ranks and back; the original object never travels.
  /// For measured formats this is where bits-on-air == bytes-on-wire is
  /// enforced: the codec must produce exactly the accounted bit count.
  [[nodiscard]] const std::vector<std::uint8_t>& encode_payload(
      const Msg& m, std::uint32_t bits) {
    proto::BitWriter w;
    proto::DistMsgAdapter<Msg>::encode(m, w, wire_);
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT_MSG(w.bit_count() == bits,
                      "wire codec and energy accounting disagree on size");
      EMST_ASSERT(w.bytes().size() ==
                  (static_cast<std::size_t>(bits) + 7) / 8);
    }
    payload_scratch_ = w.bytes();
    return payload_scratch_;
  }

  void route(NodeId u, NodeId v, double d, std::uint32_t bits,
             const std::vector<std::uint8_t>& payload) {
    // Sequential delay draws in global send order — the exact stream
    // Network::enqueue consumes. The FIFO clamp is applied rank-side
    // (per-link state lives with the receiver's rank).
    std::uint64_t due = now_ + 1;
    if (delays_.max_extra_delay > 0)
      due += delay_rng_.uniform_int(delays_.max_extra_delay + 1);
    const std::size_t rank = node_rank_[v];
    Mailbox& mb = mailboxes_[rank];
    const std::size_t rec = proto::kDistRoundRecordBytes + payload.size();
    EMST_ASSERT_MSG(rec <= kChunkRecordBudget, "message exceeds frame cap");
    if (mb.cur.size() + rec > kChunkRecordBudget) {
      // Overlap the barrier halves: the full chunk goes on the wire NOW (an
      // async put into the rank's next-round buffer — ingest is
      // order-insensitive) instead of queueing for a send-all at the
      // barrier. flush_staged runs entirely before begin_round's clock
      // tick, so every chunk of this barrier stamps the same round, now_+1.
      emit_chunk(rank, round_opcode(), /*last=*/false, mb.cur_count, mb.cur,
                 now_ + 1);
      mb.cur.clear();
      mb.cur_count = 0;
    }
    proto::dist_put_u64(mb.cur, seq_++);
    proto::dist_put_u64(mb.cur, due);
    proto::dist_put_u32(mb.cur, u);
    proto::dist_put_u32(mb.cur, v);
    proto::dist_put_u64(mb.cur, std::bit_cast<std::uint64_t>(d));
    proto::dist_put_u32(mb.cur, bits);
    proto::dist_put_u32(mb.cur, static_cast<std::uint32_t>(payload.size()));
    mb.cur.insert(mb.cur.end(), payload.begin(), payload.end());
    ++mb.cur_count;
    ++inflight_;
    payload_bytes_ += payload.size();
  }

  void begin_round() {
    meter_.tick_round();
    ++now_;
    if (faults_.enabled()) {
      // Serial section: the chaos controller consult (and its injections)
      // happen before the exchange. `inflight_` counts routed,
      // not-yet-delivered messages — Network's pre-drain count.
      faults_.set_in_flight(inflight_);
      faults_.advance_to(now_);
      for (const CrashWindow& w : faults_.take_new_injections()) {
        meter_.note_event(EventType::kCrashInject, w.node, kNoEventNode, 0.0,
                          w.until);
        // Actor placement: the rank-side crash mirrors need this window
        // before they classify the round's due bucket; it ships in the
        // final ACTOR_ROUND chunk of this same barrier.
        if (actor_mode_) pending_window_ship_.push_back(w);
      }
    }
    if (oracle_ != nullptr) oracle_->on_round(now_, meter_);
  }

  // -- The round barrier: mailbox exchange over the wire -------------------

  void exchange_round(std::vector<Delivery<Msg>>* out) {
    group_.set_round(now_);
    // Send phase: every rank gets its ROUND frames (even when empty — the
    // empty frame IS the barrier tick that advances the rank's calendar
    // ring) before any reply is awaited, so ranks work concurrently.
    for (std::size_t r = 0; r < rank_count_; ++r) send_round(r);
    // Receive phase, in rank order (the merge is receiver-keyed, so the
    // collection order does not affect the output).
    for (std::size_t r = 0; r < rank_count_; ++r) receive_drained(r);
    merge_round(out);
  }

  void send_round(std::size_t rank) {
    Mailbox& mb = mailboxes_[rank];
    emit_chunk(rank, proto::kDistOpRound, /*last=*/true, mb.cur_count, mb.cur,
               now_);
    mb.cur.clear();
    mb.cur_count = 0;
  }

  [[nodiscard]] std::uint8_t round_opcode() const noexcept {
    return actor_mode_ ? proto::kDistOpActorRound : proto::kDistOpRound;
  }

  /// Seal one round-scoped chunk (either placement's ROUND opcode) and put
  /// it on the wire. `extra` is an opcode-specific section appended after
  /// the records (actor mode: the chaos-window section of the final chunk).
  void emit_chunk(std::size_t rank, std::uint8_t opcode, bool last,
                  std::uint32_t count, const std::vector<std::uint8_t>& records,
                  std::uint64_t round,
                  const std::vector<std::uint8_t>* extra = nullptr) {
    std::vector<std::uint8_t>& body = body_scratch_;
    body.clear();
    body.push_back(opcode);
    body.push_back(last ? proto::kDistFlagLast : 0);
    proto::dist_put_u64(body, round);
    proto::dist_put_u32(body, count);
    body.insert(body.end(), records.begin(), records.end());
    if (extra != nullptr) body.insert(body.end(), extra->begin(), extra->end());
    const std::uint64_t h = proto::dist_hash(body.data(), body.size());
    chains_[rank] = proto::dist_mix(chains_[rank], h);
    group_.log_collective(rank, opcode, round, count, h);
    if (corrupt_rank_ == rank) {
      body[2] ^= 0x01;  // hook: corrupt AFTER hashing — wire damage
      corrupt_rank_ = kNoRank;
    }
    proto::dist_put_u64(body, chains_[rank]);
    group_.send_frame(rank, body);
    if (skip_rank_ == rank) {
      // Hook: a phantom collective only the parent's bookkeeping saw.
      chains_[rank] = proto::dist_mix(chains_[rank], h);
      skip_rank_ = kNoRank;
    }
  }

  /// Read, verify (protocol + fingerprint) and log one rank reply chunk of
  /// the given opcode; hands back the raw frame payload. Shared by every
  /// rank-to-parent collective in both placements.
  bool read_reply_chunk(std::size_t rank, std::uint8_t opcode,
                        std::vector<std::uint8_t>* payload,
                        std::uint32_t* count) {
    serve::Frame frame = group_.read_frame(rank);
    std::vector<std::uint8_t>& p = frame.payload;
    if (frame.version != proto::kDistProtocolVersion ||
        p.size() < proto::kDistFrameFixedBytes) {
      group_.fatal(rank, "malformed reply frame");
    }
    if (p[0] == proto::kDistOpDesync) {
      // The rank detected a fingerprint mismatch on OUR frame and
      // reported instead of hanging. Surface its view verbatim.
      const std::uint64_t round = proto::dist_get_u64(p.data() + 2);
      const std::uint64_t expected = proto::dist_get_u64(p.data() + 10);
      const std::uint64_t actual = proto::dist_get_u64(p.data() + 18);
      char msg[160];
      std::snprintf(msg, sizeof msg,
                    "collective fingerprint mismatch reported by rank at "
                    "round %llu: expected %016llx actual %016llx",
                    static_cast<unsigned long long>(round),
                    static_cast<unsigned long long>(expected),
                    static_cast<unsigned long long>(actual));
      group_.fatal(rank, msg);
    }
    if (p[0] != opcode ||
        p.size() <
            proto::kDistFrameFixedBytes + proto::kDistFingerprintBytes) {
      group_.fatal(rank, "unexpected reply opcode");
    }
    const bool last = (p[1] & proto::kDistFlagLast) != 0;
    const std::uint64_t round = proto::dist_get_u64(p.data() + 2);
    if (round != now_) group_.fatal(rank, "barrier round skew in reply");
    const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
    const std::uint64_t h = proto::dist_hash(p.data(), body_len);
    chains_[rank] = proto::dist_mix(chains_[rank], h);
    *count = proto::dist_get_u32(p.data() + 10);
    group_.log_collective(rank, opcode, round, *count, h);
    const std::uint64_t fp = proto::dist_get_u64(p.data() + body_len);
    if (fp != chains_[rank]) {
      char msg[160];
      std::snprintf(msg, sizeof msg,
                    "collective fingerprint mismatch in rank reply: "
                    "expected %016llx actual %016llx",
                    static_cast<unsigned long long>(chains_[rank]),
                    static_cast<unsigned long long>(fp));
      group_.fatal(rank, msg);
    }
    *payload = std::move(p);
    return last;
  }

  void receive_drained(std::size_t rank) {
    DrainedList& dl = drained_[rank];
    dl.items.clear();
    dl.cursor = 0;
    bool last = false;
    while (!last) {
      std::vector<std::uint8_t> p;
      std::uint32_t count = 0;
      last = read_reply_chunk(rank, proto::kDistOpDrained, &p, &count);
      const std::size_t body_len = p.size() - proto::kDistFingerprintBytes;
      std::size_t off = proto::kDistFrameFixedBytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (off + proto::kDistDrainedRecordBytes > body_len)
          group_.fatal(rank, "truncated reply record");
        DrainedRec rec;
        rec.from = proto::dist_get_u32(&p[off]);
        rec.to = proto::dist_get_u32(&p[off + 4]);
        rec.distance =
            std::bit_cast<double>(proto::dist_get_u64(&p[off + 8]));
        rec.bits = proto::dist_get_u32(&p[off + 16]);
        rec.lost = p[off + 20] != 0;
        const std::uint32_t plen = proto::dist_get_u32(&p[off + 21]);
        off += proto::kDistDrainedRecordBytes;
        if (off + plen > body_len)
          group_.fatal(rank, "truncated reply payload");
        rec.payload.assign(p.begin() + static_cast<std::ptrdiff_t>(off),
                           p.begin() + static_cast<std::ptrdiff_t>(off + plen));
        off += plen;
        dl.items.push_back(std::move(rec));
      }
    }
  }

  // -- Actor placement: exchange, parse, replay ----------------------------

  /// Seal the chunk staged in body_scratch_ into the rank's chain and send
  /// it (parent → rank collectives that are not ROUND-record chunks).
  void seal_parent_chunk(std::size_t rank, std::uint8_t opcode,
                         std::uint32_t count) {
    std::vector<std::uint8_t>& body = body_scratch_;
    const std::uint64_t h = proto::dist_hash(body.data(), body.size());
    chains_[rank] = proto::dist_mix(chains_[rank], h);
    group_.log_collective(rank, opcode, now_, count, h);
    proto::dist_put_u64(body, chains_[rank]);
    group_.send_frame(rank, body);
  }

  /// Send the final ACTOR_ROUND chunk (plus the chaos-window section) to
  /// one rank; full chunks already went out eagerly from route().
  void send_actor_round(std::size_t rank) {
    Mailbox& mb = mailboxes_[rank];
    if (mb.cur.size() + windows_scratch_.size() > kChunkRecordBudget) {
      emit_chunk(rank, proto::kDistOpActorRound, /*last=*/false, mb.cur_count,
                 mb.cur, now_);
      mb.cur.clear();
      mb.cur_count = 0;
    }
    emit_chunk(rank, proto::kDistOpActorRound, /*last=*/true, mb.cur_count,
               mb.cur, now_, &windows_scratch_);
    mb.cur.clear();
    mb.cur_count = 0;
  }

  /// Parse the effect run of one ledger entry (bounds-asserted) and return
  /// the position past it.
  [[nodiscard]] const std::uint8_t* skip_effects(const std::uint8_t* ptr,
                                                const std::uint8_t* end,
                                                std::uint16_t neffects) {
    EffectView ev;
    for (std::uint16_t k = 0; k < neffects; ++k)
      ptr = decode_effect(ptr, end, ev);
    return ptr;
  }

  /// Receive one rank's ACTOR_DRAINED ledger: retry entries (rank FIFO
  /// order) and delivery entries (ascending-receiver order).
  void receive_actor_ledger(std::size_t rank) {
    ActorLedger& lg = actor_drained_[rank];
    lg.reset();
    bool last = false;
    while (!last) {
      std::vector<std::uint8_t> p;
      std::uint32_t count = 0;
      last = read_reply_chunk(rank, proto::kDistOpActorDrained, &p, &count);
      lg.chunks.push_back(std::move(p));
      const std::vector<std::uint8_t>& buf = lg.chunks.back();
      const std::size_t body_len = buf.size() - proto::kDistFingerprintBytes;
      const std::uint8_t* ptr = buf.data() + proto::kDistFrameFixedBytes;
      const std::uint8_t* end = buf.data() + body_len;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (ptr >= end) group_.fatal(rank, "truncated actor ledger entry");
        const std::uint8_t tag = *ptr++;
        ActorEntry e;
        bool retry = false;
        if (tag == proto::kDistEntryRetry) {
          if (end - ptr <
              static_cast<std::ptrdiff_t>(proto::kDistEntryRetryFixedBytes - 1))
            group_.fatal(rank, "truncated actor ledger entry");
          e.to = proto::dist_get_u32(ptr);
          e.status = ptr[4];
          e.neffects = proto::dist_get_u16(ptr + 5);
          ptr += proto::kDistEntryRetryFixedBytes - 1;
          retry = true;
        } else if (tag == proto::kDistEntryDelivery) {
          if (end - ptr < static_cast<std::ptrdiff_t>(
                              proto::kDistEntryDeliveryFixedBytes - 1))
            group_.fatal(rank, "truncated actor ledger entry");
          e.from = proto::dist_get_u32(ptr);
          e.to = proto::dist_get_u32(ptr + 4);
          e.distance = std::bit_cast<double>(proto::dist_get_u64(ptr + 8));
          e.bits = proto::dist_get_u32(ptr + 16);
          e.status = ptr[20];
          e.neffects = proto::dist_get_u16(ptr + 21);
          ptr += proto::kDistEntryDeliveryFixedBytes - 1;
        } else {
          group_.fatal(rank, "unknown actor ledger entry tag");
        }
        e.eff = ptr;
        ptr = skip_effects(ptr, end, e.neffects);
        e.eff_end = ptr;
        (retry ? lg.retries : lg.deliveries).push_back(e);
      }
      if (ptr != end)
        group_.fatal(rank, "trailing bytes in actor ledger chunk");
    }
  }

  /// Receive one rank's ACTOR_STEPPED groups (rank-local invocation order).
  void receive_actor_groups(std::size_t rank, std::uint8_t opcode) {
    ActorLedger& lg = actor_drained_[rank];
    lg.reset();
    bool last = false;
    while (!last) {
      std::vector<std::uint8_t> p;
      std::uint32_t count = 0;
      last = read_reply_chunk(rank, opcode, &p, &count);
      lg.chunks.push_back(std::move(p));
      const std::vector<std::uint8_t>& buf = lg.chunks.back();
      const std::size_t body_len = buf.size() - proto::kDistFingerprintBytes;
      const std::uint8_t* ptr = buf.data() + proto::kDistFrameFixedBytes;
      const std::uint8_t* end = buf.data() + body_len;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (end - ptr <
            static_cast<std::ptrdiff_t>(proto::kDistStepGroupFixedBytes))
          group_.fatal(rank, "truncated actor step group");
        ActorEntry g;
        g.to = proto::dist_get_u32(ptr);
        g.status = ptr[4];
        g.neffects = proto::dist_get_u16(ptr + 5);
        ptr += proto::kDistStepGroupFixedBytes;
        g.eff = ptr;
        ptr = skip_effects(ptr, end, g.neffects);
        g.eff_end = ptr;
        lg.groups.push_back(g);
      }
      if (ptr != end)
        group_.fatal(rank, "trailing bytes in actor step chunk");
    }
  }

  /// Replay one entry's effects in recorded order. Send effects reproduce
  /// the serial env's sequence exactly — sink tally, then kind/fragment on
  /// the ambient meter, then the stage (which captures the ambient
  /// context). Ambient kind/fragment are deliberately LEFT at the last
  /// effect's values: that is the state the serial run's meter would be in
  /// after the same handler, and later events stamp against it.
  template <typename Sink>
  void replay_effects(NodeId from, const ActorEntry& e, Sink& sink) {
    const std::uint8_t* p = e.eff;
    EffectView ev;
    for (std::uint16_t i = 0; i < e.neffects; ++i) {
      p = decode_effect(p, e.eff_end, ev);
      switch (ev.tag) {
        case proto::kDistEffectUnicast: {
          sink.on_send(ev.dtag, std::bit_cast<double>(ev.reach_bits));
          meter_.set_kind(ev.kind);
          meter_.set_fragment(ev.fragment);
          stage_raw_unicast(from, ev.to, ev.bits, ev.payload, ev.plen);
          break;
        }
        case proto::kDistEffectBroadcast: {
          const double radius = std::bit_cast<double>(ev.reach_bits);
          sink.on_send(ev.dtag, radius);
          meter_.set_kind(ev.kind);
          meter_.set_fragment(ev.fragment);
          stage_raw_broadcast(from, radius, ev.bits, ev.payload, ev.plen);
          break;
        }
        default:
          sink.on_note(from, ev.a, ev.b);
          break;
      }
    }
    EMST_ASSERT(p == e.eff_end);
  }

  /// The serial half of the actor barrier (see actor_collect_round).
  template <typename Sink>
  ActorRoundInfo replay_actor_round(Sink& sink) {
    ActorRoundInfo info;
    info.retried = defer_fifo_.size();
    std::size_t total = 0;
    for (const ActorLedger& lg : actor_drained_) total += lg.deliveries.size();
    inflight_ -= total;
    // Pass A — classification in global (receiver, sequence) order: crash
    // fates and their telemetry events fire HERE, before any of this
    // round's effects replay, exactly like the serial drain (handler
    // effects carry no events, so the round's event stream is the drop
    // sequence at its merge positions).
    survivors_scratch_.clear();
    for (;;) {
      ActorLedger* next = nullptr;
      for (ActorLedger& lg : actor_drained_) {
        if (lg.cursor >= lg.deliveries.size()) continue;
        if (next == nullptr ||
            lg.deliveries[lg.cursor].to < next->deliveries[next->cursor].to) {
          next = &lg;
        }
      }
      if (next == nullptr) break;
      const ActorEntry& e = next->deliveries[next->cursor++];
      const bool drop = faults_.enabled() && faults_.crashed(e.to);
      EMST_ASSERT_MSG(drop == (e.status == proto::kDistDeliveryCrashDropped),
                      "rank crash mirror diverged from the fault clock");
      if (drop) {
        EMST_ASSERT(e.neffects == 0);
        ++faults_.stats().dropped_crashed;
        meter_.set_bits(e.bits);
        meter_.note_event(EventType::kCrashDrop, e.from, e.to, e.distance);
        meter_.clear_bits();
        continue;
      }
      survivors_scratch_.push_back(&e);
    }
    info.batch = survivors_scratch_.size();
    // Pass B — retries replay in the parent's deferred-model order (= the
    // serial driver's retry sweep), pulling each rank's stream in step.
    fifo_scratch_.clear();
    for (const NodeId u : defer_fifo_) {
      ActorLedger& lg = actor_drained_[node_rank_[u]];
      EMST_ASSERT_MSG(lg.retry_cursor < lg.retries.size(),
                      "actor retry ledger shorter than the deferred model");
      const ActorEntry& e = lg.retries[lg.retry_cursor++];
      EMST_ASSERT_MSG(e.to == u, "actor retry ledger order diverged");
      replay_effects(u, e, sink);
      if (e.status != 0) fifo_scratch_.push_back(u);
    }
    for (const ActorLedger& lg : actor_drained_)
      EMST_ASSERT_MSG(lg.retry_cursor == lg.retries.size(),
                      "actor retry ledger longer than the deferred model");
    // Pass C — surviving deliveries replay in merge order; deferred ones
    // extend the deferred model exactly like the serial driver's queue.
    for (const ActorEntry* e : survivors_scratch_) {
      replay_effects(e->to, *e, sink);
      if (e->status == proto::kDistDeliveryDeferred) {
        fifo_scratch_.push_back(e->to);
      } else {
        EMST_ASSERT(e->status == proto::kDistDeliveryDispatched);
      }
    }
    std::swap(defer_fifo_, fifo_scratch_);
    info.deferred_after = defer_fifo_.size();
    return info;
  }

  // -- Barrier: serial merge -----------------------------------------------

  /// Walk the ranks' drained lists in global (receiver, sequence) order —
  /// receivers partition across ranks, so a receiver-keyed R-way merge is
  /// exact and tie-free. Drop events, crash classification (the fault
  /// clock lives here) and fault stats are emitted in the same interleaved
  /// order Network's delivery loop produces them; survivors decode from
  /// their wire bytes.
  void merge_round(std::vector<Delivery<Msg>>* out) {
    std::size_t total = 0;
    for (DrainedList& dl : drained_) total += dl.items.size();
    inflight_ -= total;
    out->reserve(total);
    for (;;) {
      DrainedList* next = nullptr;
      for (DrainedList& dl : drained_) {
        if (dl.cursor >= dl.items.size()) continue;
        if (next == nullptr ||
            dl.items[dl.cursor].to < next->items[next->cursor].to) {
          next = &dl;
        }
      }
      if (next == nullptr) break;
      DrainedRec& item = next->items[next->cursor++];
      if (faults_.enabled() && item.lost) {
        ++faults_.stats().lost;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kLoss, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        continue;
      }
      if (faults_.enabled() && faults_.crashed(item.to)) {
        ++faults_.stats().dropped_crashed;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kCrashDrop, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        continue;
      }
      proto::BitReader rdr(item.payload);
      Msg m = proto::DistMsgAdapter<Msg>::decode(rdr, wire_);
      if constexpr (WireFormat<Msg>::kMeasured) {
        EMST_ASSERT_MSG(rdr.bit_count() == item.bits,
                        "decode consumed a different size than accounted");
      }
      out->push_back({item.from, item.to, item.distance, std::move(m)});
    }
  }

  const Topo& topo_;
  EnergyMeter meter_;
  WireFormat<Msg> wire_{};
  bool unbounded_broadcast_;
  DelayModel delays_;
  support::Rng delay_rng_;
  FaultInjector faults_;
  InvariantOracle* oracle_ = nullptr;
  std::size_t rank_count_;
  std::vector<std::uint32_t> node_rank_;  ///< node → rank (tile % ranks)
  dist::ProcessGroup group_;
  std::vector<Mailbox> mailboxes_;
  std::vector<DrainedList> drained_;
  std::vector<std::uint64_t> chains_;  ///< per-rank fingerprint chains
  // Frontend staging (issue order = replay order).
  std::vector<StagedOp> ops_;
  std::vector<Target> targets_;
  std::vector<std::uint8_t> payload_scratch_;
  std::vector<std::uint8_t> body_scratch_;
  std::size_t staged_live_ = 0;  ///< staged deliveries that will route
  std::uint64_t seq_ = 0;        ///< global send sequence number
  std::size_t inflight_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::size_t corrupt_rank_ = kNoRank;
  std::size_t skip_rank_ = kNoRank;
  // Actor placement (rank-resident execution).
  bool actor_mode_ = false;
  ActorTestHooks actor_hooks_{};
  std::vector<ActorLedger> actor_drained_;
  std::vector<NodeId> defer_fifo_;  ///< deferred-queue model (receiver ids)
  std::vector<NodeId> fifo_scratch_;
  std::vector<const ActorEntry*> survivors_scratch_;
  std::vector<CrashWindow> pending_window_ship_;
  std::vector<std::uint8_t> windows_scratch_;
};

}  // namespace emst::sim
