#include "emst/sim/reliable.hpp"

namespace emst::sim {

ArqOutcome ArqLink::transmit(EnergyMeter& meter, graph::NodeId u,
                             graph::NodeId v, double distance) {
  ArqOutcome out;
  if (injector_ != nullptr && injector_->crashed(u)) {
    ++injector_->stats().suppressed;  // a dead radio transmits nothing
    return out;
  }
  const std::uint32_t attempts = arq_.enabled ? arq_.max_retries + 1 : 1;
  std::uint32_t rto = arq_.rto_rounds;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    ++out.data_attempts;
    if (attempt == 0) {
      ++stats_.data_sent;
    } else {
      ++stats_.retransmissions;
    }
    meter.charge_unicast(u, distance);  // lost or not, the radio transmitted
    bool data_ok = true;
    if (injector_ != nullptr) {
      if (injector_->drop(u, v)) {
        data_ok = false;
        ++injector_->stats().lost;
      } else if (injector_->crashed(v)) {
        data_ok = false;
        ++injector_->stats().dropped_crashed;
      }
    }
    if (data_ok) {
      if (out.delivered) ++stats_.duplicates;
      out.delivered = true;
      if (!arq_.enabled) break;
      // Stop-and-wait: the receiver confirms every copy it hears.
      ++out.ack_attempts;
      ++stats_.acks_sent;
      meter.charge_unicast(v, distance);
      bool ack_ok = true;
      if (injector_ != nullptr) {
        if (injector_->drop(v, u)) {
          ack_ok = false;
          ++injector_->stats().lost;
        } else if (injector_->crashed(u)) {
          ack_ok = false;
          ++injector_->stats().dropped_crashed;
        }
      }
      if (ack_ok) {
        out.acked = true;
        break;
      }
    }
    if (attempt + 1 < attempts) {
      out.extra_rounds += rto;
      rto = std::min(rto * arq_.backoff, ArqOptions::kRtoCap);
    }
  }
  if (arq_.enabled && !out.acked) ++stats_.give_ups;
  if (out.delivered) ++stats_.delivered;
  stats_.timeout_rounds += out.extra_rounds;
  return out;
}

}  // namespace emst::sim
