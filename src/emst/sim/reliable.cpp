#include "emst/sim/reliable.hpp"

namespace emst::sim {

ArqOutcome ArqLink::transmit(EnergyMeter& meter, graph::NodeId u,
                             graph::NodeId v, double distance) {
  ArqOutcome out;
  if (injector_ != nullptr && injector_->crashed(u)) {
    // Flags are clear here, so the replayer does NOT count this toward
    // data_sent — matching the live stats, which skip the whole session.
    ++injector_->stats().suppressed;  // a dead radio transmits nothing
    meter.note_event(EventType::kSuppress, u, v, distance);
    return out;
  }
  // Every frame this session charges is flagged as ARQ-managed (even the
  // single-attempt degenerate mode): the replay validator reconstructs
  // data_sent / retransmissions / acks_sent from exactly these flags.
  //
  // Bits: the ambient meter value is the *payload* size the driver set for
  // this logical message. Each physical frame adds the ARQ header on top —
  // payload+header for DATA, header alone for ACKs — exactly what
  // ReliableChannel's frame codec bills for the same fate sequence. An
  // unmeasured payload (0 bits) leaves the whole session unmeasured.
  const MsgKind payload_kind = meter.kind();
  const std::uint32_t payload_bits = meter.bits();
  const std::uint32_t data_bits =
      payload_bits != 0 ? payload_bits + kArqHeaderBits : 0;
  const std::uint32_t ack_bits = payload_bits != 0 ? kArqHeaderBits : 0;
  const std::uint32_t attempts = arq_.enabled ? arq_.max_retries + 1 : 1;
  std::uint32_t rto = arq_.rto_rounds;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    ++out.data_attempts;
    if (attempt == 0) {
      ++stats_.data_sent;
    } else {
      ++stats_.retransmissions;
    }
    stats_.data_bits += data_bits;
    meter.set_arq_frame(/*retransmit=*/attempt != 0);
    meter.set_bits(data_bits);
    meter.charge_unicast(u, v, distance);  // lost or not, the radio transmitted
    bool data_ok = true;
    if (injector_ != nullptr) {
      if (injector_->drop(u, v)) {
        data_ok = false;
        ++injector_->stats().lost;
        meter.note_event(EventType::kLoss, u, v, distance);
      } else if (injector_->crashed(v)) {
        data_ok = false;
        ++injector_->stats().dropped_crashed;
        meter.note_event(EventType::kCrashDrop, u, v, distance);
      }
    }
    if (data_ok) {
      if (out.delivered) {
        ++stats_.duplicates;
        meter.note_event(EventType::kArqDuplicate, v, u);
      }
      out.delivered = true;
      if (!arq_.enabled) break;
      // Stop-and-wait: the receiver confirms every copy it hears.
      ++out.ack_attempts;
      ++stats_.acks_sent;
      stats_.ack_bits += ack_bits;
      meter.set_arq_frame(/*retransmit=*/false);
      meter.set_kind(MsgKind::kArqAck);
      meter.set_bits(ack_bits);
      meter.charge_unicast(v, u, distance);
      meter.set_kind(payload_kind);
      meter.set_bits(data_bits);
      bool ack_ok = true;
      if (injector_ != nullptr) {
        if (injector_->drop(v, u)) {
          ack_ok = false;
          ++injector_->stats().lost;
          meter.note_event(EventType::kLoss, v, u, distance);
        } else if (injector_->crashed(u)) {
          ack_ok = false;
          ++injector_->stats().dropped_crashed;
          meter.note_event(EventType::kCrashDrop, v, u, distance);
        }
      }
      if (ack_ok) {
        out.acked = true;
        break;
      }
    }
    if (attempt + 1 < attempts) {
      out.extra_rounds += rto;
      rto = std::min(rto * arq_.backoff, ArqOptions::kRtoCap);
    }
  }
  meter.clear_arq_frame();
  meter.set_bits(payload_bits);  // restore the driver's ambient payload size
  if (arq_.enabled && !out.acked) {
    ++stats_.give_ups;
    meter.note_event(EventType::kArqGiveUp, u, v);
  }
  if (out.delivered) {
    ++stats_.delivered;
    meter.note_event(EventType::kArqDeliver, u, v);
  }
  stats_.timeout_rounds += out.extra_rounds;
  if (out.extra_rounds > 0)
    meter.note_event(EventType::kArqTimeout, u, v, 0.0, out.extra_rounds);
  return out;
}

}  // namespace emst::sim
