// Energy / message / time accounting (paper §II).
//
// Energy complexity is Σᵢ wᵢ where wᵢ = d^α is the cost of the i-th message:
//  - a unicast from u to v costs d(u,v)^α (bidirectional exchange costs both
//    directions, i.e. 2·w(u,v)),
//  - a *local broadcast* at power radius ρ costs ρ^α once, regardless of the
//    number of receivers (the radio/wireless feature the paper highlights).
// The meter also counts messages (message complexity) and synchronous rounds
// (time complexity) so benches can report all three classical measures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "emst/geometry/pathloss.hpp"

namespace emst::sim {

/// One metered transmission, recorded when tracing is enabled. The trace is
/// the ground truth for the energy figure: replaying it through the path-
/// loss model must reproduce the meter's total exactly (tested).
struct TraceEvent {
  enum class Kind : std::uint8_t { kUnicast, kBroadcast };
  Kind kind = Kind::kUnicast;
  /// Transmission distance (unicast) or power radius (broadcast).
  double reach = 0.0;
  std::uint32_t receivers = 1;
};

struct Accounting {
  double energy = 0.0;
  std::uint64_t unicasts = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;  ///< receiver-side count (broadcast fan-out)
  std::uint64_t rounds = 0;

  [[nodiscard]] std::uint64_t messages() const noexcept {
    return unicasts + broadcasts;
  }

  /// Component-wise difference (for per-step breakdowns).
  [[nodiscard]] Accounting operator-(const Accounting& rhs) const noexcept {
    Accounting out;
    out.energy = energy - rhs.energy;
    out.unicasts = unicasts - rhs.unicasts;
    out.broadcasts = broadcasts - rhs.broadcasts;
    out.deliveries = deliveries - rhs.deliveries;
    out.rounds = rounds - rhs.rounds;
    return out;
  }

  Accounting& operator+=(const Accounting& rhs) noexcept {
    energy += rhs.energy;
    unicasts += rhs.unicasts;
    broadcasts += rhs.broadcasts;
    deliveries += rhs.deliveries;
    rounds += rhs.rounds;
    return *this;
  }
};

class EnergyMeter {
 public:
  explicit EnergyMeter(geometry::PathLoss model = {}) : model_(model) {}

  void charge_unicast(double distance) {
    charge_unicast(kAnonymousSender, distance);
  }

  /// Sender-attributed unicast: also feeds the per-node ledger when enabled.
  void charge_unicast(std::uint32_t from, double distance) {
    const double cost = model_.cost(distance);
    totals_.energy += cost;
    ++totals_.unicasts;
    ++totals_.deliveries;
    attribute(from, cost);
    if (tracing_) trace_.push_back({TraceEvent::Kind::kUnicast, distance, 1});
  }

  void charge_broadcast(double radius, std::size_t receivers) {
    charge_broadcast(kAnonymousSender, radius, receivers);
  }

  void charge_broadcast(std::uint32_t from, double radius,
                        std::size_t receivers) {
    const double cost = model_.cost(radius);
    totals_.energy += cost;
    ++totals_.broadcasts;
    totals_.deliveries += receivers;
    attribute(from, cost);
    if (tracing_) {
      trace_.push_back({TraceEvent::Kind::kBroadcast, radius,
                        static_cast<std::uint32_t>(receivers)});
    }
  }

  /// Track each node's transmit-energy ledger (the paper's motivation is
  /// battery life: the hottest node's burn bounds the network lifetime, a
  /// dimension the total hides). Off by default.
  void enable_per_node(std::size_t n) { per_node_.assign(n, 0.0); }
  [[nodiscard]] const std::vector<double>& per_node() const noexcept {
    return per_node_;
  }
  /// The lifetime bound: the largest single-node energy (0 if disabled).
  [[nodiscard]] double hottest_node() const noexcept {
    double worst = 0.0;
    for (const double e : per_node_) worst = std::max(worst, e);
    return worst;
  }

  /// Start recording every charge into the trace (off by default — the big
  /// sweeps would otherwise allocate per message).
  void enable_trace() { tracing_ = true; }
  [[nodiscard]] const std::vector<TraceEvent>& trace() const noexcept {
    return trace_;
  }

  /// Recompute the energy figure from the trace alone. Equal to
  /// totals().energy whenever tracing was on from the start.
  [[nodiscard]] double replay_trace() const {
    double energy = 0.0;
    for (const TraceEvent& event : trace_) energy += model_.cost(event.reach);
    return energy;
  }

  void tick_round() noexcept { ++totals_.rounds; }
  void tick_rounds(std::uint64_t k) noexcept { totals_.rounds += k; }

  /// Fold another accounting into this meter (per-step meters → run total).
  void absorb(const Accounting& other) noexcept { totals_ += other; }

  [[nodiscard]] const Accounting& totals() const noexcept { return totals_; }
  [[nodiscard]] const geometry::PathLoss& model() const noexcept { return model_; }

  /// Snapshot for per-phase deltas: `delta = meter.totals() - snapshot`.
  [[nodiscard]] Accounting snapshot() const noexcept { return totals_; }

 private:
  static constexpr std::uint32_t kAnonymousSender =
      static_cast<std::uint32_t>(-1);

  void attribute(std::uint32_t from, double cost) {
    if (from < per_node_.size()) per_node_[from] += cost;
  }

  geometry::PathLoss model_;
  Accounting totals_;
  bool tracing_ = false;
  std::vector<TraceEvent> trace_;
  std::vector<double> per_node_;
};

}  // namespace emst::sim
