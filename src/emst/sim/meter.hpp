// Energy / message / time accounting (paper §II).
//
// Energy complexity is Σᵢ wᵢ where wᵢ = d^α is the cost of the i-th message:
//  - a unicast from u to v costs d(u,v)^α (bidirectional exchange costs both
//    directions, i.e. 2·w(u,v)),
//  - a *local broadcast* at power radius ρ costs ρ^α once, regardless of the
//    number of receivers (the radio/wireless feature the paper highlights).
// The meter also counts messages (message complexity) and synchronous rounds
// (time complexity) so benches can report all three classical measures.
//
// The meter is additionally the single chokepoint for structured telemetry
// (telemetry.hpp): it carries the current phase/kind/fragment context, folds
// every charge into the per-phase × per-kind `EnergyBreakdown` matrix when
// enabled, and stamps `TelemetryEvent`s into an attached `Telemetry`. All of
// it is opt-in; disabled meters behave exactly like the seed meter.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "emst/geometry/pathloss.hpp"
#include "emst/sim/telemetry.hpp"

namespace emst::sim {

/// One metered transmission, recorded when tracing is enabled. The trace is
/// the ground truth for the energy figure: replaying it through the path-
/// loss model must reproduce the meter's total exactly (tested).
struct TraceEvent {
  enum class Kind : std::uint8_t { kUnicast, kBroadcast };
  Kind kind = Kind::kUnicast;
  /// Transmission distance (unicast) or power radius (broadcast).
  double reach = 0.0;
  std::uint32_t receivers = 1;
};

struct Accounting {
  double energy = 0.0;
  std::uint64_t unicasts = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;  ///< receiver-side count (broadcast fan-out)
  std::uint64_t rounds = 0;
  /// Bits-on-air across all charged transmissions. Populated only when the
  /// sending engine has a `WireFormat` for the message type (wire.hpp);
  /// 0 means "unmeasured", not "empty messages". Bits never influence the
  /// energy figure — the paper charges d^α per message regardless of size.
  std::uint64_t bits = 0;

  [[nodiscard]] std::uint64_t messages() const noexcept {
    return unicasts + broadcasts;
  }

  /// Component-wise difference (for per-step breakdowns).
  [[nodiscard]] Accounting operator-(const Accounting& rhs) const noexcept {
    Accounting out;
    out.energy = energy - rhs.energy;
    out.unicasts = unicasts - rhs.unicasts;
    out.broadcasts = broadcasts - rhs.broadcasts;
    out.deliveries = deliveries - rhs.deliveries;
    out.rounds = rounds - rhs.rounds;
    out.bits = bits - rhs.bits;
    return out;
  }

  Accounting& operator+=(const Accounting& rhs) noexcept {
    energy += rhs.energy;
    unicasts += rhs.unicasts;
    broadcasts += rhs.broadcasts;
    deliveries += rhs.deliveries;
    rounds += rhs.rounds;
    bits += rhs.bits;
    return *this;
  }
};

/// Per-phase × per-kind energy/message matrix plus per-phase round counts —
/// the measurable form of the paper's Thm 5.3 breakdown and §V-A message-
/// class attributions. Cells accumulate in charge order, so a matrix rebuilt
/// by replaying the telemetry event stream is bitwise identical (tested).
struct EnergyBreakdown {
  static constexpr std::size_t kPhases =
      static_cast<std::size_t>(PhaseTag::kCount);
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kCount);

  struct Cell {
    double energy = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;  ///< wire bits, when the sender had a codec
    [[nodiscard]] bool operator==(const Cell&) const = default;
  };

  std::array<std::array<Cell, kKinds>, kPhases> cells{};
  std::array<std::uint64_t, kPhases> unicasts{};
  std::array<std::uint64_t, kPhases> broadcasts{};
  std::array<std::uint64_t, kPhases> deliveries{};
  std::array<std::uint64_t, kPhases> rounds{};

  [[nodiscard]] Cell& cell(PhaseTag phase, MsgKind kind) {
    return cells[static_cast<std::size_t>(phase)]
                [static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const Cell& cell(PhaseTag phase, MsgKind kind) const {
    return cells[static_cast<std::size_t>(phase)]
                [static_cast<std::size_t>(kind)];
  }

  /// THE definition of a phase's accounting: energy is the row sum over
  /// kinds, in kind order. Every consumer (EoptResult step totals, the CLI
  /// --breakdown matrix footer) derives from this one function, so the
  /// reported breakdowns cannot disagree — not even in the last ulp.
  [[nodiscard]] Accounting phase_total(PhaseTag phase) const {
    const std::size_t p = static_cast<std::size_t>(phase);
    Accounting out;
    for (const Cell& c : cells[p]) {
      out.energy += c.energy;
      out.bits += c.bits;
    }
    out.unicasts = unicasts[p];
    out.broadcasts = broadcasts[p];
    out.deliveries = deliveries[p];
    out.rounds = rounds[p];
    return out;
  }

  [[nodiscard]] bool operator==(const EnergyBreakdown&) const = default;
};

class EnergyMeter {
 public:
  explicit EnergyMeter(geometry::PathLoss model = {}) : model_(model) {}

  void charge_unicast(double distance) {
    charge_unicast(kAnonymousSender, kAnonymousSender, distance);
  }

  /// Sender-attributed unicast: also feeds the per-node ledger when enabled.
  void charge_unicast(std::uint32_t from, double distance) {
    charge_unicast(from, kAnonymousSender, distance);
  }

  /// Fully-attributed unicast: sender, receiver, distance. The receiver is
  /// telemetry-only (awake-round tracking, trace records); prefer this
  /// overload wherever the callsite knows who it is talking to.
  void charge_unicast(std::uint32_t from, std::uint32_t to, double distance) {
    const double cost = model_.cost(distance);
    totals_.energy += cost;
    ++totals_.unicasts;
    ++totals_.deliveries;
    totals_.bits += bits_;
    attribute(from, cost);
    if (tracing_) trace_.push_back({TraceEvent::Kind::kUnicast, distance, 1});
    if (breakdown_on_) {
      EnergyBreakdown::Cell& c = breakdown_.cell(phase_, kind_);
      c.energy += cost;
      ++c.messages;
      c.bits += bits_;
      const std::size_t p = static_cast<std::size_t>(phase_);
      ++breakdown_.unicasts[p];
      ++breakdown_.deliveries[p];
    }
    if (telemetry_ != nullptr) {
      TelemetryEvent event;
      event.type = EventType::kUnicast;
      stamp(event);
      event.from = from;
      event.to = to;
      event.reach = distance;
      event.energy = cost;
      telemetry_->record(event);
    }
  }

  void charge_broadcast(double radius, std::size_t receivers) {
    charge_broadcast(kAnonymousSender, radius, receivers);
  }

  void charge_broadcast(std::uint32_t from, double radius,
                        std::size_t receivers) {
    const double cost = model_.cost(radius);
    totals_.energy += cost;
    ++totals_.broadcasts;
    totals_.deliveries += receivers;
    totals_.bits += bits_;
    attribute(from, cost);
    if (tracing_) {
      trace_.push_back({TraceEvent::Kind::kBroadcast, radius,
                        static_cast<std::uint32_t>(receivers)});
    }
    if (breakdown_on_) {
      EnergyBreakdown::Cell& c = breakdown_.cell(phase_, kind_);
      c.energy += cost;
      ++c.messages;
      c.bits += bits_;
      const std::size_t p = static_cast<std::size_t>(phase_);
      ++breakdown_.broadcasts[p];
      breakdown_.deliveries[p] += receivers;
    }
    if (telemetry_ != nullptr) {
      TelemetryEvent event;
      event.type = EventType::kBroadcast;
      stamp(event);
      event.from = from;
      event.receivers = static_cast<std::uint32_t>(receivers);
      event.reach = radius;
      event.energy = cost;
      telemetry_->record(event);
    }
  }

  /// Record a non-charge event (drop, suppression, ARQ bookkeeping) with the
  /// meter's current phase/kind/fragment/round context. No-op without
  /// attached telemetry; never touches Accounting or the breakdown.
  void note_event(EventType type, std::uint32_t from, std::uint32_t to,
                  double reach = 0.0, std::uint64_t value = 0) {
    if (telemetry_ == nullptr) return;
    TelemetryEvent event;
    event.type = type;
    stamp(event);
    event.from = from;
    event.to = to;
    event.reach = reach;
    event.value = value;
    telemetry_->record(event);
  }

  /// Track each node's transmit-energy ledger (the paper's motivation is
  /// battery life: the hottest node's burn bounds the network lifetime, a
  /// dimension the total hides). Off by default.
  void enable_per_node(std::size_t n) { per_node_.assign(n, 0.0); }
  [[nodiscard]] const std::vector<double>& per_node() const noexcept {
    return per_node_;
  }
  /// The lifetime bound: the largest single-node energy (0 if disabled).
  [[nodiscard]] double hottest_node() const noexcept {
    double worst = 0.0;
    for (const double e : per_node_) worst = std::max(worst, e);
    return worst;
  }

  /// Start recording every charge into the trace (off by default — the big
  /// sweeps would otherwise allocate per message).
  void enable_trace() { tracing_ = true; }
  [[nodiscard]] const std::vector<TraceEvent>& trace() const noexcept {
    return trace_;
  }

  /// Recompute the energy figure from the trace alone. Equal to
  /// totals().energy whenever tracing was on from the start.
  [[nodiscard]] double replay_trace() const {
    double energy = 0.0;
    for (const TraceEvent& event : trace_) energy += model_.cost(event.reach);
    return energy;
  }

  // -- Telemetry context ---------------------------------------------------

  /// Accumulate the per-phase × per-kind matrix (off by default; ~1 KiB of
  /// meter state plus a few adds per charge when on).
  void enable_breakdown() { breakdown_on_ = true; }
  [[nodiscard]] bool breakdown_enabled() const noexcept {
    return breakdown_on_;
  }
  [[nodiscard]] const EnergyBreakdown& breakdown() const noexcept {
    return breakdown_;
  }

  /// Attach an event hub. Inert telemetry (no sink, no aggregation) is
  /// dropped here so charge paths only ever test one pointer.
  void attach_telemetry(Telemetry* telemetry) noexcept {
    telemetry_ = (telemetry != nullptr && telemetry->active()) ? telemetry
                                                               : nullptr;
  }
  [[nodiscard]] Telemetry* telemetry() const noexcept { return telemetry_; }

  void set_phase(PhaseTag phase) noexcept { phase_ = phase; }
  [[nodiscard]] PhaseTag phase() const noexcept { return phase_; }
  void set_kind(MsgKind kind) noexcept { kind_ = kind; }
  [[nodiscard]] MsgKind kind() const noexcept { return kind_; }
  void set_fragment(std::uint32_t fragment) noexcept { fragment_ = fragment; }
  void clear_fragment() noexcept { fragment_ = kNoEventNode; }
  [[nodiscard]] std::uint32_t fragment() const noexcept { return fragment_; }

  /// Raw flag byte (kEventFlagArq | kEventFlagRetransmit). The getter/raw
  /// setter exist for engines that capture the ambient context at send time
  /// and replay it later (ShardedNetwork's round-barrier charge replay) —
  /// drivers should keep using set_arq_frame / clear_arq_frame.
  [[nodiscard]] std::uint8_t flags() const noexcept { return flags_; }
  void set_flags(std::uint8_t flags) noexcept { flags_ = flags; }

  /// Wire size of the next charged transmission(s), in bits. Engines set
  /// this from their `WireFormat<Msg>` immediately before each charge;
  /// ArqLink adds frame headers on top of the ambient payload size. 0 (the
  /// default and the no-codec value) means "unmeasured" and is elided from
  /// traces. Like kind/flags, this is ambient context — it never affects
  /// the energy math.
  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  void set_bits(std::uint32_t bits) noexcept { bits_ = bits; }
  void clear_bits() noexcept { bits_ = 0; }

  /// Tag the next charges as ARQ-managed frames (retransmit = timeout
  /// re-send rather than first attempt). Only ArqLink / ReliableChannel set
  /// these; the replay validator keys ArqStats reconstruction off them.
  void set_arq_frame(bool retransmit) noexcept {
    flags_ = static_cast<std::uint8_t>(
        kEventFlagArq | (retransmit ? kEventFlagRetransmit : 0));
  }
  void clear_arq_frame() noexcept { flags_ = 0; }

  /// RAII phase setter: restores the previous phase on scope exit, so
  /// nested stages compose and early returns can't leak a stale tag.
  class PhaseScope {
   public:
    PhaseScope(EnergyMeter& meter, PhaseTag phase)
        : meter_(meter), saved_(meter.phase()) {
      meter_.set_phase(phase);
    }
    ~PhaseScope() { meter_.set_phase(saved_); }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    EnergyMeter& meter_;
    PhaseTag saved_;
  };
  [[nodiscard]] PhaseScope scoped_phase(PhaseTag phase) {
    return PhaseScope(*this, phase);
  }

  // ------------------------------------------------------------------------

  void tick_round() { tick_rounds(1); }
  void tick_rounds(std::uint64_t k) {
    if (k == 0) return;  // no event either — replay sees the same stream
    totals_.rounds += k;
    if (breakdown_on_)
      breakdown_.rounds[static_cast<std::size_t>(phase_)] += k;
    if (telemetry_ != nullptr) {
      TelemetryEvent event;
      event.type = EventType::kRound;
      stamp(event);  // round stamped after the increment: clock-final value
      event.bits = 0;  // clock ticks carry no frame, whatever is ambient
      event.value = k;
      telemetry_->record(event);
    }
  }

  /// Fold another accounting into this meter (per-step meters → run total).
  void absorb(const Accounting& other) noexcept { totals_ += other; }

  [[nodiscard]] const Accounting& totals() const noexcept { return totals_; }
  [[nodiscard]] const geometry::PathLoss& model() const noexcept { return model_; }

  /// Snapshot for per-phase deltas: `delta = meter.totals() - snapshot`.
  [[nodiscard]] Accounting snapshot() const noexcept { return totals_; }

 private:
  static constexpr std::uint32_t kAnonymousSender =
      static_cast<std::uint32_t>(-1);

  void attribute(std::uint32_t from, double cost) {
    if (from < per_node_.size()) per_node_[from] += cost;
  }

  /// Copy the ambient context (phase/kind/flags/fragment/bits/clock) into
  /// event.
  void stamp(TelemetryEvent& event) const noexcept {
    event.kind = kind_;
    event.phase = phase_;
    event.flags = flags_;
    event.fragment = fragment_;
    event.bits = bits_;
    event.round = totals_.rounds;
  }

  geometry::PathLoss model_;
  Accounting totals_;
  bool tracing_ = false;
  std::vector<TraceEvent> trace_;
  std::vector<double> per_node_;

  // Telemetry context (all inert unless opted into).
  bool breakdown_on_ = false;
  EnergyBreakdown breakdown_{};
  Telemetry* telemetry_ = nullptr;
  PhaseTag phase_ = PhaseTag::kRun;
  MsgKind kind_ = MsgKind::kData;
  std::uint8_t flags_ = 0;
  std::uint32_t fragment_ = kNoEventNode;
  std::uint32_t bits_ = 0;
};

}  // namespace emst::sim
