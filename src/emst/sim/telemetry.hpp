// Structured run telemetry (docs/TELEMETRY.md).
//
// The paper's headline claims are *breakdowns* — Thm 5.3 splits EOPT's
// energy across Step 1 / census / Step 2, and §V-A attributes the win to
// specific message classes — so coarse `Accounting` totals are not enough
// to verify them. This module is the opt-in event layer underneath every
// figure: each physical transmission, channel drop, ARQ bookkeeping action
// and round tick becomes one `TelemetryEvent` carrying sender, receiver,
// round, distance, energy, message kind, fragment id and algorithm phase.
//
// Layering (no cycles): telemetry.hpp knows nothing about the meter or the
// engines. `EnergyMeter` (meter.hpp) is the single emission chokepoint — it
// holds the phase/kind/fragment context and stamps every charge into the
// attached `Telemetry`; engines and drivers only set context and, for
// non-charge events (drops, ARQ meta), call `EnergyMeter::note_event`.
//
// Cost model: fully opt-in. With no `Telemetry` attached, the meter's hot
// paths pay one predictable null check per charge — measured as noise in
// bench/telemetry_overhead (tracked in BENCH_telemetry.json).
//
// The replay invariant (tests/telemetry_test.cpp, scripts/check_trace.py):
// `replay_events()` (trace_replay.hpp) recomputes `Accounting`,
// `FaultStats`, `ArqStats` and the per-phase × per-kind energy matrix from
// the event stream alone, and must match the live counters bit-for-bit —
// the event stream accumulates in exactly the charge order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace emst::sim {

/// Algorithm phase an event belongs to. `kRun` is the single-phase default;
/// EOPT scopes its three stages (`EnergyMeter::scoped_phase`).
enum class PhaseTag : std::uint8_t { kRun, kStep1, kCensus, kStep2, kCount };

/// Message class of a charge event. Covers classic/sync GHS (CONNECT …
/// ANNOUNCE), the census collective, Co-NNT (REQUEST/REPLY/CONNECTION) and
/// ARQ acknowledgement frames; `kData` is the anonymous default (raw engine
/// traffic, ReliableChannel payloads).
enum class MsgKind : std::uint8_t {
  kData,
  kConnect,
  kInitiate,
  kTest,
  kAccept,
  kReject,
  kReport,
  kChangeRoot,
  kAnnounce,
  kCensus,
  kRequest,
  kReply,
  kConnection,
  kArqAck,
  kCount,
};

/// What happened. Charge events (kUnicast/kBroadcast) carry energy; fault
/// events mirror the FaultStats counters one-for-one; ARQ meta events mirror
/// the ArqStats counters that are not derivable from flagged charges.
enum class EventType : std::uint8_t {
  kUnicast,       ///< one charged point-to-point transmission
  kBroadcast,     ///< one charged local broadcast (receivers = fan-out)
  kLoss,          ///< channel ate a transmission (sender was charged)
  kCrashDrop,     ///< receiver down at delivery (sender was charged)
  kSuppress,      ///< sender down: transmission suppressed, free
  kArqDeliver,    ///< ARQ session: payload reached the receiver
  kArqDuplicate,  ///< ARQ session: receiver suppressed a re-delivery
  kArqGiveUp,     ///< ARQ session exhausted its retry budget
  kArqTimeout,    ///< `value` timeout rounds spent waiting on lost frames
  kRound,         ///< simulated clock advanced by `value` rounds
  kCrashInject,   ///< chaos controller injected a crash window for `from`
  kOracleViolation,  ///< invariant oracle recorded violation #`value`
  kCount,
};

[[nodiscard]] std::string_view phase_tag_name(PhaseTag phase);
[[nodiscard]] std::string_view msg_kind_name(MsgKind kind);
[[nodiscard]] std::string_view event_type_name(EventType type);

/// TelemetryEvent::from/to/fragment when unknown / not applicable.
inline constexpr std::uint32_t kNoEventNode = static_cast<std::uint32_t>(-1);

/// TelemetryEvent::flags bits.
inline constexpr std::uint8_t kEventFlagArq = 1;         ///< ARQ-managed frame
inline constexpr std::uint8_t kEventFlagRetransmit = 2;  ///< timeout re-send

struct TelemetryEvent {
  EventType type = EventType::kUnicast;
  MsgKind kind = MsgKind::kData;
  PhaseTag phase = PhaseTag::kRun;
  std::uint8_t flags = 0;
  std::uint32_t from = kNoEventNode;
  std::uint32_t to = kNoEventNode;  ///< receiver (unicast) or kNoEventNode
  std::uint32_t receivers = 0;      ///< broadcast fan-out
  std::uint32_t fragment = kNoEventNode;  ///< sender's fragment id, if known
  std::uint32_t bits = 0;   ///< wire size of the frame; 0 = unmeasured
  std::uint64_t round = 0;  ///< meter clock when the event was recorded
  std::uint64_t value = 0;  ///< rounds (kRound, kArqTimeout)
  double reach = 0.0;       ///< distance (unicast) or power radius (broadcast)
  double energy = 0.0;      ///< reach^α for charge events, 0 otherwise

  [[nodiscard]] bool operator==(const TelemetryEvent&) const = default;
};

/// Event consumer. Implementations must not throw out of `on_event` (the
/// meter's charge paths call it).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TelemetryEvent& event) = 0;
};

/// Buffers every event in memory — the replay validator's input.
class MemoryTraceSink final : public TraceSink {
 public:
  void on_event(const TelemetryEvent& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<TelemetryEvent>& events() const noexcept {
    return events_;
  }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TelemetryEvent> events_;
};

/// Streams one compact JSON object per event (the JSONL trace format of
/// docs/TELEMETRY.md; doubles print with %.17g so replay round-trips
/// exactly). Header/summary framing lines are written by the caller —
/// see write_trace_header / write_trace_summary in trace_replay.hpp.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void on_event(const TelemetryEvent& event) override;

 private:
  std::ostream& out_;
};

/// Streaming aggregates (no event buffering): per-node transmit-energy
/// ledger, awake-round counts and the total simulated round count. A node
/// is "awake" in a round when it transmits or is the addressed receiver of
/// a unicast; broadcast listeners stay idle (receiving is free in the
/// paper's model, §II).
struct TelemetryAggregate {
  std::vector<double> node_energy;          ///< per sender, Σ reach^α
  std::vector<std::uint64_t> awake_rounds;  ///< distinct active rounds
  std::uint64_t rounds = 0;                 ///< total simulated rounds seen

  void apply(const TelemetryEvent& event);
  [[nodiscard]] std::uint64_t idle_rounds(std::uint32_t node) const noexcept {
    const std::uint64_t awake =
        node < awake_rounds.size() ? awake_rounds[node] : 0;
    return rounds > awake ? rounds - awake : 0;
  }

 private:
  friend class Telemetry;
  /// Last round (plus one; 0 = never) each node was seen active — the
  /// dedup that turns per-event touches into distinct-round counts.
  std::vector<std::uint64_t> last_active_;
  void touch(std::uint32_t node, std::uint64_t round);
};

/// The opt-in event hub a run attaches to (`sim::RunConfig::telemetry`).
/// Configure it — sink, aggregation — BEFORE the run starts: the meter
/// snapshots activity at attach time and skips inert telemetry entirely.
/// Use one Telemetry per run; aggregates and round stamps assume a single
/// monotone meter clock.
class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(TraceSink* sink) : sink_(sink) {}

  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  /// Size the per-node aggregate arrays and start aggregating.
  void enable_aggregation(std::size_t node_count) {
    aggregating_ = true;
    aggregate_.node_energy.assign(node_count, 0.0);
    aggregate_.awake_rounds.assign(node_count, 0);
    aggregate_.last_active_.assign(node_count, 0);
    aggregate_.rounds = 0;
  }

  [[nodiscard]] bool aggregating() const noexcept { return aggregating_; }
  [[nodiscard]] const TelemetryAggregate& aggregate() const noexcept {
    return aggregate_;
  }
  /// Anything to do? Inert telemetry is dropped at attach time.
  [[nodiscard]] bool active() const noexcept {
    return sink_ != nullptr || aggregating_;
  }

  void record(const TelemetryEvent& event) {
    if (sink_ != nullptr) sink_->on_event(event);
    if (aggregating_) aggregate_.apply(event);
  }

 private:
  TraceSink* sink_ = nullptr;
  bool aggregating_ = false;
  TelemetryAggregate aggregate_;
};

}  // namespace emst::sim
