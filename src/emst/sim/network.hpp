// Synchronous message-passing network (paper §II distributed computing model).
//
// Semantics:
//  - Communication happens in discrete rounds. A message sent during round t
//    is delivered at the beginning of round t+1.
//  - `unicast(u, v, m)` costs d(u,v)^α and delivers to v only.
//  - `broadcast(u, ρ, m)` costs ρ^α once and delivers to every node within
//    Euclidean distance ρ of u (local broadcasting, §II). ρ may exceed the
//    topology's max radius only if `unbounded_broadcast` is enabled (used by
//    Co-NNT's doubling probes, whose analysis caps ρ at the diameter √2).
//  - Delivery order within a round is deterministic: sorted by receiver,
//    then by global send sequence — which also preserves per-edge FIFO.
//  - No collisions/interference: each transmission succeeds (§II) — UNLESS a
//    `FaultModel` is supplied (docs/ROBUSTNESS.md). Then: transmissions from
//    a crashed sender are suppressed (free — a dead radio emits nothing);
//    channel losses are drawn at send time in global send order (so the
//    reference engine sees identical fates) but, like messages addressed to
//    a receiver that is down when they arrive, are removed at DELIVERY time
//    — the sender was charged, the round advances, and `pending()` drains
//    normally, so drivers that loop on it never wedge on doomed messages.
//
// Engine (docs/PERF.md has the full story): in-flight messages live in a
// *calendar queue* — a ring of per-round buckets keyed by due round. With
// max_extra_delay = D, every due falls in [now+1, now+1+D] (the per-edge
// FIFO clamp can only raise a due to another value in that window), which
// covers D+1 distinct residues mod D+1, so a ring of D+1 buckets never
// aliases. Enqueue appends to its bucket in O(1); collect_round() drains
// exactly one bucket and orders it by receiver with a counting scatter (or a
// small indexed sort), instead of re-sorting the whole in-flight set every
// round as the seed engine did (see reference_network.hpp). Messages within
// a bucket are appended in send-sequence order, so any stable by-receiver
// ordering reproduces the (receiver, sequence) contract bit-for-bit.
//
// The payload type is a template parameter; each algorithm defines its own
// message struct or variant.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/oracle.hpp"
#include "emst/sim/topology.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/flat_map.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

template <typename Msg>
struct Delivery {
  NodeId from = 0;
  NodeId to = 0;
  double distance = 0.0;  ///< d(from, to)
  Msg msg{};
};

/// Message-delay model. The default (max_extra_delay = 0) is the paper's
/// synchronous model: sent in round t, delivered in round t+1. With
/// max_extra_delay > 0 each message draws an extra uniform delay in
/// [0, max_extra_delay], which realizes an *asynchronous* execution —
/// per-edge FIFO is still enforced (GHS requires FIFO links), so the classic
/// GHS correctness proof continues to apply. Delays are drawn from `seed`
/// deterministically.
struct DelayModel {
  std::uint32_t max_extra_delay = 0;
  std::uint64_t seed = 0x5eedULL;
};

/// Topo is either sim::Topology (materialized CSR adjacency) or
/// sim::ImplicitTopology (grid-backed, neighbours regenerated on demand);
/// both enumerate neighbours in the identical (weight, id) order, so engine
/// behaviour is bitwise-independent of the backend.
template <typename Msg, typename Topo = Topology>
class Network {
 public:
  Network(const Topo& topo, geometry::PathLoss model = {},
          bool unbounded_broadcast = false, DelayModel delays = {},
          FaultModel faults = {}, Telemetry* telemetry = nullptr)
      : topo_(topo),
        meter_(model),
        unbounded_broadcast_(unbounded_broadcast),
        delays_(delays),
        delay_rng_(delays.seed),
        faults_(faults),
        buckets_(delays.max_extra_delay + 1) {
    meter_.attach_telemetry(telemetry);
    if (faults_.enabled())
      faults_.set_chaos_env(topo_.node_count(), topo_.points());
  }

  /// Send m from u to v; delivered next round. Charges d(u,v)^α.
  /// With `unbounded_broadcast` (power-adaptive radios, e.g. Co-NNT), the
  /// range check is waived for unicasts too — replies travel back over
  /// whatever distance the probe reached.
  void unicast(NodeId u, NodeId v, Msg m) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    // Wire size is stamped before the suppress check so a crashed sender's
    // kSuppress event still records how many bits never made it to air —
    // the replayer relies on this to rebuild ARQ data_bits exactly.
    const std::uint32_t bits = wire_.bits(m);
    meter_.set_bits(bits);
    if (faults_.enabled() && faults_.crashed(u)) {
      ++faults_.stats().suppressed;
      meter_.note_event(EventType::kSuppress, u, v, d);
      meter_.clear_bits();
      return;
    }
    meter_.charge_unicast(u, v, d);
    meter_.clear_bits();
    enqueue(u, v, d, bits, std::move(m));
  }

  /// Locally broadcast m from u at power radius `radius`; every node within
  /// `radius` receives it next round. Charges radius^α once.
  void broadcast(NodeId u, double radius, const Msg& m) {
    broadcast_impl(u, radius, m);
  }

  /// Rvalue overload: the last receiver takes ownership of the payload
  /// instead of copying it (matters for heap-backed message types).
  void broadcast(NodeId u, double radius, Msg&& m) {
    broadcast_impl(u, radius, std::move(m));
  }

  [[nodiscard]] bool pending() const noexcept { return inflight_count_ > 0; }

  /// Advance to the next round and return the messages due for delivery,
  /// sorted by (receiver, send sequence) — which preserves per-edge FIFO.
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    meter_.tick_round();
    ++now_;
    // head_ indexed the bucket for round now_+1 before the increment — i.e.
    // for the round that just became due.
    std::vector<Item>& bucket = buckets_[head_];
    head_ = head_ + 1 == buckets_.size() ? 0 : head_ + 1;
    if (faults_.enabled()) {
      // The chaos controller sees the pre-drain in-flight count (messages
      // enqueued and not yet delivered) — the same value ShardedNetwork
      // reports at its barrier, so strategies inject identically on both.
      faults_.set_in_flight(inflight_count_);
      faults_.advance_to(now_);
      for (const CrashWindow& w : faults_.take_new_injections())
        meter_.note_event(EventType::kCrashInject, w.node, kNoEventNode, 0.0,
                          w.until);
    }
    inflight_count_ -= bucket.size();
    if (oracle_ != nullptr) oracle_->on_round(now_, meter_);
    std::vector<Delivery<Msg>> out;
    out.reserve(bucket.size());
    drain_by_receiver(bucket, out);
    bucket.clear();
    return out;
  }

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return faults_.stats();
  }
  /// Attach a runtime invariant oracle, checked at every round barrier.
  /// Null (the default) costs one pointer test per round.
  void attach_oracle(InvariantOracle* oracle) noexcept { oracle_ = oracle; }
  [[nodiscard]] InvariantOracle* oracle() const noexcept { return oracle_; }
  /// The engine's message codec (wire.hpp). The default-constructed format
  /// measures nothing; drivers with a real codec configure it here (e.g.
  /// seed a proto::WireContext) before sending.
  [[nodiscard]] WireFormat<Msg>& wire_format() noexcept { return wire_; }
  [[nodiscard]] const WireFormat<Msg>& wire_format() const noexcept {
    return wire_;
  }

 private:
  struct Item {
    NodeId from;
    NodeId to;
    double distance;
    Msg msg;
    bool lost;  ///< channel fate, drawn at send time (fault layer)
    std::uint32_t bits;  ///< wire size, stamped on delivery-time drop events
    // No seq / due fields: the bucket index encodes the due round and the
    // append order within a bucket IS the send-sequence order.
  };

  template <typename M>
  void broadcast_impl(NodeId u, double radius, M&& m) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    const std::uint32_t bits = wire_.bits(m);
    meter_.set_bits(bits);
    if (faults_.enabled() && faults_.crashed(u)) {
      ++faults_.stats().suppressed;
      meter_.note_event(EventType::kSuppress, u, kNoEventNode, radius);
      meter_.clear_bits();
      return;
    }
    receivers_.clear();
    if (radius <= topo_.max_radius()) {
      // Relies on per-node neighbor ranges being sorted by weight, asserted
      // once at Topology construction (not re-checked in this hot loop).
      const auto nbs = topo_.neighbors(u);
      receivers_.reserve(nbs.size());
      for (const graph::Neighbor& nb : nbs) {
        if (nb.w <= radius) receivers_.push_back(nb.id);
        else
          break;
      }
    } else {
      receivers_ = topo_.nodes_within(u, radius);
    }
    meter_.charge_broadcast(u, radius, receivers_.size());
    meter_.clear_bits();
    if (receivers_.empty()) return;
    for (std::size_t i = 0; i + 1 < receivers_.size(); ++i) {
      const NodeId v = receivers_[i];
      enqueue(u, v, topo_.distance(u, v), bits, Msg(m));
    }
    const NodeId v = receivers_.back();
    enqueue(u, v, topo_.distance(u, v), bits, Msg(std::forward<M>(m)));
  }

  void enqueue(NodeId u, NodeId v, double d, std::uint32_t bits, Msg m) {
    // Channel fate is drawn here, in global send order — identical between
    // this engine and ReferenceNetwork — but enforced at delivery time.
    const bool lost = faults_.enabled() && faults_.drop(u, v);
    std::uint64_t due = now_ + 1;
    if (delays_.max_extra_delay > 0) {
      due += delay_rng_.uniform_int(delays_.max_extra_delay + 1);
      // FIFO per directed edge: never schedule before an earlier message on
      // the same link.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
      const auto slot = last_due_.find_or_insert(key, due);
      if (!slot.inserted) {
        due = std::max(due, *slot.value);
        *slot.value = due;
      }
    }
    // Ring indexing without the 64-bit modulo (it showed up per enqueue):
    // head_ is the bucket for round now_+1 and due - (now_+1) <= D, so one
    // conditional wrap suffices. The window invariant (drawn due lies in
    // [now+1, now+1+D]; the FIFO clamp only raises it to another due that
    // was itself in the window) is what keeps D+1 buckets alias-free —
    // checked here so a future delay model that widens the window trips
    // loudly instead of aliasing buckets (tests/calendar_ring_test.cpp).
    EMST_ASSERT(due > now_ && due - now_ - 1 <= delays_.max_extra_delay);
    std::size_t idx = head_ + static_cast<std::size_t>(due - now_ - 1);
    if (idx >= buckets_.size()) idx -= buckets_.size();
    buckets_[idx].push_back({u, v, d, std::move(m), lost, bits});
    ++inflight_count_;
  }

  /// Final emit step for one ordered item: drop doomed messages (recording
  /// the fault stat + telemetry event) or hand the survivor out. Fault
  /// filtering happens HERE, after receiver ordering, so drop events appear
  /// in the same (receiver, sequence) order the reference engine emits them
  /// — survivors are unaffected (stable ordering of the full bucket equals
  /// stable ordering of the survivors).
  void deliver(Item& item, std::vector<Delivery<Msg>>& out) {
    if (faults_.enabled()) {
      if (item.lost) {
        ++faults_.stats().lost;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kLoss, item.from, item.to, item.distance);
        meter_.clear_bits();
        return;
      }
      if (faults_.crashed(item.to)) {
        ++faults_.stats().dropped_crashed;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kCrashDrop, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        return;
      }
    }
    out.push_back({item.from, item.to, item.distance, std::move(item.msg)});
  }

  /// Move the bucket's items into `out` ordered by (receiver, send
  /// sequence). Three strategies, cheapest first: the bucket is often
  /// already in receiver order (single sender walking its neighbor list);
  /// small buckets use a stable indexed sort; large buckets use a counting
  /// scatter over the receivers actually touched — O(B + U log U) for U
  /// distinct receivers, with no comparator at all.
  void drain_by_receiver(std::vector<Item>& bucket,
                         std::vector<Delivery<Msg>>& out) {
    const std::size_t b = bucket.size();
    if (b == 0) return;
    bool in_order = true;
    for (std::size_t i = 1; i < b; ++i) {
      if (bucket[i - 1].to > bucket[i].to) {
        in_order = false;
        break;
      }
    }
    if (in_order) {
      for (Item& item : bucket) deliver(item, out);
      return;
    }
    order_.resize(b);
    if (b <= kSmallBucket) {
      for (std::size_t i = 0; i < b; ++i)
        order_[i] = static_cast<std::uint32_t>(i);
      std::stable_sort(order_.begin(), order_.end(),
                       [&bucket](std::uint32_t a, std::uint32_t c) {
                         return bucket[a].to < bucket[c].to;
                       });
    } else {
      if (recv_slot_.size() < topo_.node_count())
        recv_slot_.assign(topo_.node_count(), 0);
      touched_.clear();
      for (const Item& item : bucket) {
        if (recv_slot_[item.to]++ == 0) touched_.push_back(item.to);
      }
      std::sort(touched_.begin(), touched_.end());
      std::uint32_t offset = 0;
      for (const NodeId r : touched_) {
        const std::uint32_t count = recv_slot_[r];
        recv_slot_[r] = offset;
        offset += count;
      }
      for (std::size_t i = 0; i < b; ++i)
        order_[recv_slot_[bucket[i].to]++] = static_cast<std::uint32_t>(i);
      for (const NodeId r : touched_) recv_slot_[r] = 0;
    }
    for (const std::uint32_t idx : order_) deliver(bucket[idx], out);
  }

  static constexpr std::size_t kSmallBucket = 48;

  const Topo& topo_;
  EnergyMeter meter_;
  WireFormat<Msg> wire_{};
  bool unbounded_broadcast_;
  DelayModel delays_;
  support::Rng delay_rng_;
  FaultInjector faults_;
  InvariantOracle* oracle_ = nullptr;
  std::vector<std::vector<Item>> buckets_;  ///< ring keyed by due round
  std::size_t head_ = 0;  ///< bucket holding messages due at round now_+1
  std::size_t inflight_count_ = 0;
  support::FlatMap64 last_due_;             ///< per-directed-edge FIFO clamp
  std::uint64_t now_ = 0;
  // Scratch buffers reused across calls to avoid per-round allocations.
  std::vector<NodeId> receivers_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> recv_slot_;
  std::vector<NodeId> touched_;
};

}  // namespace emst::sim
