// Runtime invariant oracle (docs/ROBUSTNESS.md).
//
// The chaos layer (chaos.hpp) attacks the protocols; this module certifies
// that they stay *structurally sound* while it happens — not just that the
// final answer is right, but that no intermediate state was ever corrupt.
// An `InvariantOracle` is attached through `RunConfig::oracle` and checked
// from two kinds of hooks:
//
//  - engine hooks, called serially at every round barrier (`Network`,
//    `ShardedNetwork`, `ReferenceNetwork` — and the meter-direct sync-GHS
//    driver at its ticks): bounded-rounds liveness and meter-internal energy
//    conservation (breakdown row sums vs the Accounting total);
//  - driver hooks, called at phase boundaries where richer state exists:
//    fragment-forest acyclicity + DSU/leader agreement over the published
//    census, and the deep meter-vs-telemetry ledger check (the per-node
//    energy array and the telemetry aggregate accumulate the *same* cost
//    sequence in the *same* order, so they must agree bitwise — any
//    divergence means a charge bypassed the chokepoint);
//  - the ARQ hook, called by `ReliableChannel` on every application-facing
//    delivery: per-link exactly-once, in-order (a re-delivered sequence
//    number is a protocol violation, not bad luck).
//
// Cost model: zero when off. Every hook site tests one pointer; with no
// oracle attached the engines' round barriers are byte-for-byte the code
// they were before this module existed (the determinism suites pin that the
// outputs stay bitwise identical).
//
// Violations are *recorded*, not thrown: the run completes, `ok()` answers,
// and each violation is mirrored as a `kOracleViolation` telemetry event.
// That makes "does this crash schedule trip an invariant?" a deterministic
// predicate — exactly what `sim::minimize_crashes` (chaos.hpp) needs to
// delta-minimize a failing schedule to its smallest reproducing crash list.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "emst/graph/edge.hpp"
#include "emst/sim/meter.hpp"
#include "emst/support/flat_map.hpp"

namespace emst::sim {

struct OracleOptions {
  bool check_energy = true;     ///< breakdown/ledger conservation checks
  bool check_fragments = true;  ///< forest acyclicity + leader agreement
  bool check_arq = true;        ///< per-link exactly-once delivery
  /// Liveness bound: a fault-free run must finish within this many rounds;
  /// 0 disables the bound. Calibrate per deployment (tests use a small
  /// multiple of the fault-free round count).
  std::uint64_t max_rounds = 0;
  /// Relative tolerance for the breakdown-vs-totals energy comparison (the
  /// two sides sum the same charges in different orders).
  double energy_rel_tol = 1e-9;
};

struct OracleViolation {
  std::string invariant;  ///< "liveness", "energy", "fragments", "arq"
  std::uint64_t round = 0;
  std::string detail;
};

class InvariantOracle {
 public:
  InvariantOracle() = default;
  explicit InvariantOracle(OracleOptions options) : options_(options) {}

  /// Engine hook — serial, at the round barrier, after the clock advanced.
  /// Cheap: the liveness bound and, when the meter carries a breakdown, the
  /// row-sum energy conservation check.
  void on_round(std::uint64_t round, EnergyMeter& meter);

  /// Driver hook — the published fragment census must be a forest whose
  /// leader labelling agrees with its connectivity: no tree cycle, every
  /// node's leader in its own component, one leader per component.
  void check_fragments(std::uint64_t round,
                       std::span<const graph::NodeId> leaders,
                       std::span<const graph::Edge> tree,
                       EnergyMeter* meter = nullptr);

  /// Driver hook — O(n) meter-vs-telemetry conservation: when both the
  /// per-node ledger and the telemetry aggregate are enabled they must agree
  /// bitwise per node (identical charge sequences, identical order).
  void check_energy_deep(std::uint64_t round, EnergyMeter& meter);

  /// ReliableChannel hook — called for every payload handed to the
  /// application. Sequence numbers on a directed link must be strictly
  /// increasing (exactly-once, in-order).
  void on_arq_deliver(graph::NodeId from, graph::NodeId to, std::uint32_t seq,
                      EnergyMeter* meter = nullptr);

  /// Record a violation found outside the built-in checks (drivers use this
  /// for the per-component exactness contract).
  void note(std::string_view invariant, std::uint64_t round,
            std::string detail, EnergyMeter* meter = nullptr);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<OracleViolation>& violations()
      const noexcept {
    return violations_;
  }
  [[nodiscard]] const OracleOptions& options() const noexcept {
    return options_;
  }

 private:
  OracleOptions options_{};
  std::vector<OracleViolation> violations_;
  /// Per directed link (packed (u<<32)|v): next sequence number the
  /// application may legally receive.
  support::FlatMap64 arq_next_;
  bool liveness_tripped_ = false;
};

}  // namespace emst::sim
