// Node-actor runtime: the shared vocabulary between drivers that express
// their per-node handlers as an actor, the serial engines that dispatch
// those handlers in-process, and the distributed engine that executes them
// *inside the rank processes* (docs/DISTRIBUTED.md §6).
//
// A NodeActor packages everything a protocol does at a single node:
//
//   actor.on_round_start(round)       — per-round bookkeeping hook, invoked
//                                       once per round on every replica;
//   actor.on_message(delivery, env)   — the message handler; may only read
//                                       and write state of delivery.to
//                                       (plus the topology), and describes
//                                       every externally visible action
//                                       through `env`;
//   actor.encode_node / decode_node   — proto::BitWriter codec for one
//                                       node's state, used by the harvest
//                                       collective to ship rank-resident
//                                       state home;
//   actor.invocations()               — handler-invocation counter, the
//                                       acceptance witness for execution
//                                       placement (rank-resident runs keep
//                                       the parent's copy at zero).
//
// The `env` is duck-typed with four verbs — unicast / broadcast / defer /
// note. Serial engines pass an env that tallies and stages immediately
// (byte-identical to the pre-actor inline drivers); the rank loop passes a
// `RankActorEnv` that appends fixed-layout effect records
// (proto/dist_wire.hpp) which the parent replays in serial order against
// its own meter, fault clock and staging queues. Receiver-locality of
// on_message is what makes the two placements indistinguishable.
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>
#include <vector>

#include "emst/proto/dist_wire.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/support/assert.hpp"

namespace emst::sim {

/// Aggregate view of one actor-mode round barrier, returned by
/// `DistributedNetwork::actor_collect_round`. The counts feed the drivers'
/// stall detection (fail-stop degradation) exactly as the serial batch /
/// retry / deferred sizes do.
struct ActorRoundInfo {
  std::size_t batch = 0;           ///< deliveries dispatched this round
  std::size_t retried = 0;         ///< deferred entries retried this round
  std::size_t deferred_after = 0;  ///< deferred-queue size after the round
};

/// Fault-injection hooks for the actor rank loop (tests only): the chosen
/// rank raises SIGKILL on itself the first time it is about to *execute a
/// handler* at >= kill_round — mid-round, after ingesting the parent's
/// frames, so the parent's barrier read observes a channel that died while
/// computation (not routing) was in flight.
struct ActorTestHooks {
  std::size_t kill_rank = static_cast<std::size_t>(-1);
  std::uint64_t kill_round = 0;
};

/// The NodeActor shape (see the header comment). `on_message` is
/// env-templated, so the concept checks the placement-independent surface;
/// the dispatch sites instantiate the handler against their concrete env.
template <typename A>
concept NodeActorState = requires(A a, const A ca, NodeId u, std::uint64_t round,
                                  proto::BitWriter& w, proto::BitReader& r) {
  a.on_round_start(round);
  ca.encode_node(u, w);
  a.decode_node(u, r);
  { ca.invocations() } -> std::convertible_to<std::uint64_t>;
};

// -- Rank-side effect ledger -------------------------------------------------

/// The env the actor rank loop hands to handlers: every verb appends one
/// effect record to the current ledger entry. Payloads are encoded here —
/// in the rank, through the same DistMsgAdapter codec the routing engine
/// uses — so the parent replays opaque bytes and the bits/bytes identity
/// keeps holding end to end.
template <typename Msg>
class RankActorEnv {
 public:
  explicit RankActorEnv(const WireFormat<Msg>& wf) : wf_(&wf) {}

  /// Start recording a fresh entry (clears the effect scratch).
  void begin_entry() {
    effects_.clear();
    count_ = 0;
    deferred_ = false;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& effects() const {
    return effects_;
  }
  [[nodiscard]] std::uint16_t effect_count() const { return count_; }
  [[nodiscard]] bool deferred() const { return deferred_; }

  void unicast(NodeId /*from*/, NodeId to, MsgKind kind, std::uint8_t dtag,
               std::uint32_t fragment, double reach, const Msg& m) {
    proto::BitWriter w;
    proto::DistMsgAdapter<Msg>::encode(m, w, *wf_);
    const std::uint32_t bits = wf_->bits(m);
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT_MSG(w.bit_count() == bits,
                      "actor effect: encoded size deviates from the measured "
                      "wire bits");
    }
    const auto& payload = w.bytes();
    effects_.push_back(proto::kDistEffectUnicast);
    effects_.push_back(static_cast<std::uint8_t>(kind));
    effects_.push_back(dtag);
    proto::dist_put_u32(effects_, fragment);
    proto::dist_put_u32(effects_, to);
    proto::dist_put_u64(effects_, std::bit_cast<std::uint64_t>(reach));
    proto::dist_put_u32(effects_, bits);
    proto::dist_put_u32(effects_, static_cast<std::uint32_t>(payload.size()));
    effects_.insert(effects_.end(), payload.begin(), payload.end());
    ++count_;
  }

  void broadcast(NodeId /*from*/, double radius, MsgKind kind,
                 std::uint8_t dtag, std::uint32_t fragment, const Msg& m) {
    proto::BitWriter w;
    proto::DistMsgAdapter<Msg>::encode(m, w, *wf_);
    const std::uint32_t bits = wf_->bits(m);
    if constexpr (WireFormat<Msg>::kMeasured) {
      EMST_ASSERT_MSG(w.bit_count() == bits,
                      "actor effect: encoded size deviates from the measured "
                      "wire bits");
    }
    const auto& payload = w.bytes();
    effects_.push_back(proto::kDistEffectBroadcast);
    effects_.push_back(static_cast<std::uint8_t>(kind));
    effects_.push_back(dtag);
    proto::dist_put_u32(effects_, fragment);
    proto::dist_put_u64(effects_, std::bit_cast<std::uint64_t>(radius));
    proto::dist_put_u32(effects_, bits);
    proto::dist_put_u32(effects_, static_cast<std::uint32_t>(payload.size()));
    effects_.insert(effects_.end(), payload.begin(), payload.end());
    ++count_;
  }

  /// The handler could not process the delivery at its current level; the
  /// rank loop re-queues the *original payload bytes* on its local FIFO and
  /// flags the entry so the parent's deferred-queue model stays in lock
  /// step.
  void defer(const Delivery<Msg>& /*d*/) { deferred_ = true; }

  /// Driver-defined scalar observation shipped to the parent replay sink
  /// (Co-NNT: chosen connection target + distance bit image).
  void note(std::uint32_t a, std::uint64_t b) {
    effects_.push_back(proto::kDistEffectNote);
    proto::dist_put_u32(effects_, a);
    proto::dist_put_u64(effects_, b);
    ++count_;
  }

 private:
  const WireFormat<Msg>* wf_;
  std::vector<std::uint8_t> effects_;
  std::uint16_t count_ = 0;
  bool deferred_ = false;
};

// -- Parent-side effect decoding ---------------------------------------------

/// One decoded effect record. For unicast `reach_bits` is the bit image of
/// the tally reach (classic GHS charges the neighbor-slot weight, which can
/// differ from d(from,to) only by the driver's choice — the parent still
/// recomputes the *charged* distance from its own topology, exactly like
/// the serial engine); for broadcast it is the radius image.
struct EffectView {
  std::uint8_t tag = 0;
  MsgKind kind = MsgKind::kData;
  std::uint8_t dtag = 0;
  std::uint32_t fragment = 0;
  NodeId to = 0;
  std::uint64_t reach_bits = 0;
  std::uint32_t bits = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t plen = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
};

/// Decode one effect record at `p`; returns the position past it. Bounds
/// violations abort — a malformed ledger is a protocol bug, never data.
[[nodiscard]] inline const std::uint8_t* decode_effect(const std::uint8_t* p,
                                                       const std::uint8_t* end,
                                                       EffectView& out) {
  EMST_ASSERT(p < end);
  out.tag = *p++;
  switch (out.tag) {
    case proto::kDistEffectUnicast: {
      EMST_ASSERT(end - p >=
                  static_cast<std::ptrdiff_t>(
                      proto::kDistEffectUnicastFixedBytes - 1));
      out.kind = static_cast<MsgKind>(*p++);
      out.dtag = *p++;
      out.fragment = proto::dist_get_u32(p);
      out.to = proto::dist_get_u32(p + 4);
      out.reach_bits = proto::dist_get_u64(p + 8);
      out.bits = proto::dist_get_u32(p + 16);
      out.plen = proto::dist_get_u32(p + 20);
      p += 24;
      EMST_ASSERT(end - p >= static_cast<std::ptrdiff_t>(out.plen));
      out.payload = p;
      return p + out.plen;
    }
    case proto::kDistEffectBroadcast: {
      EMST_ASSERT(end - p >=
                  static_cast<std::ptrdiff_t>(
                      proto::kDistEffectBroadcastFixedBytes - 1));
      out.kind = static_cast<MsgKind>(*p++);
      out.dtag = *p++;
      out.fragment = proto::dist_get_u32(p);
      out.reach_bits = proto::dist_get_u64(p + 4);
      out.bits = proto::dist_get_u32(p + 12);
      out.plen = proto::dist_get_u32(p + 16);
      p += 20;
      EMST_ASSERT(end - p >= static_cast<std::ptrdiff_t>(out.plen));
      out.payload = p;
      return p + out.plen;
    }
    case proto::kDistEffectNote: {
      EMST_ASSERT(end - p >=
                  static_cast<std::ptrdiff_t>(proto::kDistEffectNoteBytes - 1));
      out.a = proto::dist_get_u32(p);
      out.b = proto::dist_get_u64(p + 4);
      return p + 12;
    }
    default:
      EMST_ASSERT_MSG(false, "actor effect ledger: unknown effect tag");
      return end;  // unreachable
  }
}

}  // namespace emst::sim
