// The ORIGINAL sort-per-round network engine, kept verbatim as a reference.
//
// This is the seed implementation that `Network<Msg>` (network.hpp) replaced
// with a calendar queue. It survives for two purposes:
//  1. Differential testing: the calendar queue must produce *byte-identical*
//     delivery sequences (receiver-then-sequence order, per-edge FIFO under
//     random delays) — tests/network_equivalence_test.cpp replays identical
//     schedules through both engines and compares every round.
//  2. Perf baselining: bench/perf_sim.cpp measures both engines so the
//     speedup is tracked in BENCH_sim.json rather than asserted in prose.
//
// Do NOT use this in algorithms or benches other than the above: every
// collect_round() re-sorts the entire in-flight vector (O(M log M)) and
// erases the delivered prefix (O(M) memmove).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "emst/sim/meter.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/topology.hpp"
#include "emst/sim/wire.hpp"
#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::sim {

template <typename Msg, typename Topo = Topology>
class ReferenceNetwork {
 public:
  ReferenceNetwork(const Topo& topo, geometry::PathLoss model = {},
                   bool unbounded_broadcast = false, DelayModel delays = {},
                   FaultModel faults = {}, Telemetry* telemetry = nullptr)
      : topo_(topo),
        meter_(model),
        unbounded_broadcast_(unbounded_broadcast),
        delays_(delays),
        delay_rng_(delays.seed),
        faults_(faults) {
    meter_.attach_telemetry(telemetry);
    if (faults_.enabled())
      faults_.set_chaos_env(topo_.node_count(), topo_.points());
  }

  /// Send m from u to v; delivered next round. Charges d(u,v)^α.
  void unicast(NodeId u, NodeId v, Msg m) {
    EMST_ASSERT(u < topo_.node_count() && v < topo_.node_count() && u != v);
    const double d = topo_.distance(u, v);
    EMST_ASSERT_MSG(unbounded_broadcast_ ||
                        d <= topo_.max_radius() * (1.0 + 1e-12),
                    "unicast beyond the maximum transmission radius");
    const std::uint32_t bits = wire_.bits(m);
    meter_.set_bits(bits);
    if (faults_.enabled() && faults_.crashed(u)) {
      ++faults_.stats().suppressed;
      meter_.note_event(EventType::kSuppress, u, v, d);
      meter_.clear_bits();
      return;
    }
    meter_.charge_unicast(u, v, d);
    meter_.clear_bits();
    enqueue(u, v, d, bits, std::move(m));
  }

  /// Locally broadcast m from u at power radius `radius`. Charges radius^α.
  void broadcast(NodeId u, double radius, const Msg& m) {
    EMST_ASSERT(u < topo_.node_count());
    EMST_ASSERT(radius >= 0.0);
    if (!unbounded_broadcast_) {
      EMST_ASSERT_MSG(radius <= topo_.max_radius() * (1.0 + 1e-12),
                      "broadcast beyond the maximum transmission radius");
    }
    const std::uint32_t bits = wire_.bits(m);
    meter_.set_bits(bits);
    if (faults_.enabled() && faults_.crashed(u)) {
      ++faults_.stats().suppressed;
      meter_.note_event(EventType::kSuppress, u, kNoEventNode, radius);
      meter_.clear_bits();
      return;
    }
    std::vector<NodeId> receivers;
    if (radius <= topo_.max_radius()) {
      for (const graph::Neighbor& nb : topo_.neighbors(u)) {
        if (nb.w <= radius) receivers.push_back(nb.id);
        // neighbors are sorted by weight; stop at the first out of range
        else
          break;
      }
    } else {
      receivers = topo_.nodes_within(u, radius);
    }
    meter_.charge_broadcast(u, radius, receivers.size());
    meter_.clear_bits();
    for (NodeId v : receivers)
      enqueue(u, v, topo_.distance(u, v), bits, Msg(m));
  }

  [[nodiscard]] bool pending() const noexcept { return !inflight_.empty(); }

  /// Advance to the next round and return the messages due for delivery,
  /// sorted by (receiver, send sequence) — which preserves per-edge FIFO.
  [[nodiscard]] std::vector<Delivery<Msg>> collect_round() {
    meter_.tick_round();
    ++now_;
    if (faults_.enabled()) {
      faults_.set_in_flight(inflight_.size());
      faults_.advance_to(now_);
      for (const CrashWindow& w : faults_.take_new_injections())
        meter_.note_event(EventType::kCrashInject, w.node, kNoEventNode, 0.0,
                          w.until);
    } else {
      faults_.advance_to(now_);
    }
    if (oracle_ != nullptr) oracle_->on_round(now_, meter_);
    std::sort(inflight_.begin(), inflight_.end(),
              [](const Item& a, const Item& b) {
                if (a.due != b.due) return a.due < b.due;
                if (a.to != b.to) return a.to < b.to;
                return a.seq < b.seq;
              });
    std::vector<Delivery<Msg>> out;
    std::size_t consumed = 0;
    for (Item& item : inflight_) {
      if (item.due > now_) break;
      ++consumed;
      // Same delivery-time drop rule as Network (see network.hpp).
      if (item.lost) {
        ++faults_.stats().lost;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kLoss, item.from, item.to, item.distance);
        meter_.clear_bits();
        continue;
      }
      if (faults_.enabled() && faults_.crashed(item.to)) {
        ++faults_.stats().dropped_crashed;
        meter_.set_bits(item.bits);
        meter_.note_event(EventType::kCrashDrop, item.from, item.to,
                          item.distance);
        meter_.clear_bits();
        continue;
      }
      out.push_back({item.from, item.to, item.distance, std::move(item.msg)});
    }
    inflight_.erase(inflight_.begin(),
                    inflight_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return out;
  }

  [[nodiscard]] const Topo& topology() const noexcept { return topo_; }
  [[nodiscard]] EnergyMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const EnergyMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] FaultInjector& faults() noexcept { return faults_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return faults_.stats();
  }
  [[nodiscard]] WireFormat<Msg>& wire_format() noexcept { return wire_; }
  [[nodiscard]] const WireFormat<Msg>& wire_format() const noexcept {
    return wire_;
  }
  /// Oracle hook, same contract as Network::attach_oracle.
  void attach_oracle(InvariantOracle* oracle) noexcept { oracle_ = oracle; }
  [[nodiscard]] InvariantOracle* oracle() const noexcept { return oracle_; }

 private:
  struct Item {
    NodeId from;
    NodeId to;
    double distance;
    Msg msg;
    std::uint64_t seq;
    std::uint64_t due;  ///< round at which the message arrives
    bool lost = false;  ///< channel fate, drawn at send time
    std::uint32_t bits = 0;
  };

  void enqueue(NodeId u, NodeId v, double d, std::uint32_t bits, Msg m) {
    const bool lost = faults_.enabled() && faults_.drop(u, v);
    std::uint64_t due = now_ + 1;
    if (delays_.max_extra_delay > 0) {
      due += delay_rng_.uniform_int(delays_.max_extra_delay + 1);
      // FIFO per directed edge: never schedule before an earlier message on
      // the same link.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
      auto [it, inserted] = last_due_.try_emplace(key, due);
      if (!inserted) {
        due = std::max(due, it->second);
        it->second = due;
      }
    }
    inflight_.push_back({u, v, d, std::move(m), next_seq_++, due, lost, bits});
  }

  const Topo& topo_;
  EnergyMeter meter_;
  WireFormat<Msg> wire_{};
  bool unbounded_broadcast_;
  DelayModel delays_;
  support::Rng delay_rng_;
  FaultInjector faults_;
  InvariantOracle* oracle_ = nullptr;
  std::vector<Item> inflight_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_due_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
};

}  // namespace emst::sim
