// EnergyMeter is fully inline; this TU anchors the emst_sim library target.
#include "emst/sim/meter.hpp"
