// Trace-replay validation (docs/TELEMETRY.md).
//
// A telemetry stream is only trustworthy if it is *complete*: every joule,
// message, drop and retransmission the live counters saw must be derivable
// from the events alone. `replay_events` is that derivation — it folds a
// stream back into `Accounting`, `FaultStats`, `ArqStats` and the
// per-phase × per-kind `EnergyBreakdown`, accumulating in event order so
// the floating-point results are bitwise identical to the live meter's
// (tests/telemetry_test.cpp pins this across engines, faults and ARQ; the
// same derivation is re-implemented in scripts/check_trace.py for JSONL
// files).
//
// Reconstruction rules:
//  - kUnicast/kBroadcast: sum `energy`, count messages/deliveries, fold the
//    (phase, kind) cell. ARQ-flagged unicasts additionally rebuild the
//    frame counters: retransmit flag → retransmissions, kind arq_ack →
//    acks_sent, otherwise → data_sent.
//  - kLoss / kCrashDrop / kSuppress: the three FaultStats counters, 1:1.
//  - kArqDeliver / kArqDuplicate / kArqGiveUp: ArqStats meta counters, 1:1;
//    kArqTimeout adds `value` timeout rounds.
//  - kRound: adds `value` to rounds (total and per-phase).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string_view>

#include "emst/sim/fault.hpp"
#include "emst/sim/meter.hpp"
#include "emst/sim/reliable.hpp"
#include "emst/sim/telemetry.hpp"

namespace emst::sim {

/// Everything a run's counters say, recomputed from events alone.
struct ReplayTotals {
  Accounting totals;
  FaultStats faults;
  ArqStats arq;
  EnergyBreakdown breakdown;
};

[[nodiscard]] ReplayTotals replay_events(
    std::span<const TelemetryEvent> events);

/// JSONL framing for CLI trace files: one `{"trace":...}` header line before
/// the event stream and one `{"summary":...}` line after it, carrying the
/// live counters the replayer must reproduce (scripts/check_trace.py).
/// `threads` and `ranks` record how the trace was produced; neither affects
/// replay — thread and rank counts are observationally equivalent
/// (docs/PARALLEL.md, docs/DISTRIBUTED.md). "threads" only appears when
/// > 1 and "ranks" when > 0, so default serial traces are byte-stable.
/// `driver` records the driver variant that actually executed
/// (emst::resolved_driver_name) — the Co-NNT drivers silently dispatch to
/// their node-actor implementation under faults or ranks, and the header is
/// where that dispatch becomes visible to offline tooling; it only appears
/// when non-empty and is validated by scripts/check_trace.py.
void write_trace_header(std::ostream& out, std::string_view algo,
                        std::size_t n, std::uint64_t seed,
                        std::size_t threads = 0, std::size_t ranks = 0,
                        std::string_view driver = {});
void write_trace_summary(std::ostream& out, const Accounting& totals,
                         const FaultStats& faults, const ArqStats& arq);

}  // namespace emst::sim
