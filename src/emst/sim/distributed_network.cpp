#include "emst/sim/distributed_network.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emst::sim::dist {
namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a dead rank must surface as a reported error (EPIPE),
    // never as a SIGPIPE kill of the parent.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

const char* opcode_name(std::uint8_t op) {
  switch (op) {
    case proto::kDistOpRound: return "round";
    case proto::kDistOpDrained: return "drained";
    case proto::kDistOpDesync: return "desync";
    case proto::kDistOpActorRound: return "actor-round";
    case proto::kDistOpActorDrained: return "actor-drained";
    case proto::kDistOpActorStep: return "actor-step";
    case proto::kDistOpActorStepped: return "actor-stepped";
    case proto::kDistOpActorHarvest: return "actor-harvest";
    case proto::kDistOpActorHarvested: return "actor-harvested";
    default: return "?";
  }
}

}  // namespace

void ProcessGroup::spawn(std::size_t count, const ChildEntry& entry) {
  EMST_ASSERT(eps_.empty() && count > 0);
  // All channels exist before the first fork so every child can close every
  // descriptor that is not its own. socketpair (not a listening port) makes
  // allocation race-free by construction: no port numbers, no bind retries.
  std::vector<std::array<int, 2>> pairs(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pairs[i].data()) != 0) {
      std::perror("emst distributed engine: socketpair");
      std::abort();
    }
  }
  eps_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("emst distributed engine: fork");
      std::abort();
    }
    if (pid == 0) {
      // Child: keep exactly one descriptor — its own channel end. Closing
      // the rest means a parent or sibling death is visible as EOF here,
      // and our death is visible as EOF there; no descriptor leaks keep a
      // dead channel artificially open.
      for (std::size_t j = 0; j < count; ++j) {
        if (j != i) {
          ::close(pairs[j][0]);
          ::close(pairs[j][1]);
        }
      }
      ::close(pairs[i][0]);
      // _exit, not exit: the child shares the parent's stdio buffers and
      // atexit list and must not flush or run either.
      ::_exit(entry(pairs[i][1], i));
    }
    ::close(pairs[i][1]);
    Endpoint ep;
    ep.fd = pairs[i][0];
    ep.pid = pid;
    eps_.push_back(std::move(ep));
  }
}

ProcessGroup::~ProcessGroup() { shutdown(); }

void ProcessGroup::shutdown() noexcept {
  // Closing the channel is the shutdown signal: the rank's read loop sees
  // EOF and _exit(0)s. waitpid then reaps it — no zombies survive the
  // engine, and a rank that died early is reaped here too.
  for (Endpoint& ep : eps_) {
    if (ep.fd >= 0) {
      ::close(ep.fd);
      ep.fd = -1;
    }
  }
  for (Endpoint& ep : eps_) {
    if (ep.pid > 0) {
      int status = 0;
      (void)::waitpid(ep.pid, &status, 0);
      ep.pid = -1;
    }
  }
  // Leave the group respawnable: installing a node actor tears the routing
  // workers down and forks actor workers through the same spawn path.
  eps_.clear();
}

void ProcessGroup::send_frame(std::size_t rank,
                              const std::vector<std::uint8_t>& body) {
  EMST_ASSERT(rank < eps_.size());
  EMST_ASSERT(body.size() <= proto::kDistMaxFramePayloadBytes);
  std::vector<std::uint8_t>& out = frame_scratch_;
  out.clear();
  out.push_back(static_cast<std::uint8_t>(proto::kDistProtocolVersion >> 8));
  out.push_back(static_cast<std::uint8_t>(proto::kDistProtocolVersion));
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), body.begin(), body.end());
  if (!write_all(eps_[rank].fd, out.data(), out.size()))
    fatal(rank, "write to rank failed");
  bytes_sent_ += out.size();
}

serve::Frame ProcessGroup::read_frame(std::size_t rank) {
  EMST_ASSERT(rank < eps_.size());
  Endpoint& ep = eps_[rank];
  serve::Frame frame;
  std::uint8_t buf[1 << 14];
  while (!ep.in.next(frame)) {
    if (ep.in.corrupt()) fatal(rank, "corrupt frame stream from rank");
    const ssize_t n = ::read(ep.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      fatal(rank, "read from rank failed");
    }
    if (n == 0) fatal(rank, "rank channel closed mid-round");
    ep.in.feed(buf, static_cast<std::size_t>(n));
    bytes_received_ += static_cast<std::uint64_t>(n);
  }
  return frame;
}

void ProcessGroup::log_collective(std::size_t rank, std::uint8_t opcode,
                                  std::uint64_t round, std::uint32_t count,
                                  std::uint64_t hash) {
  Endpoint& ep = eps_[rank];
  ep.log[ep.log_next % kCollectiveLogSize] = {opcode, round, count, hash};
  ++ep.log_next;
}

void ProcessGroup::fatal(std::size_t rank, const std::string& what) {
  std::fprintf(stderr,
               "emst distributed engine: rank %zu failed at round %llu: %s\n",
               rank, static_cast<unsigned long long>(round_), what.c_str());
  // Report what became of the child — a crashed rank shows its exit status
  // or signal here instead of leaving a silent hang.
  if (rank < eps_.size() && eps_[rank].pid > 0) {
    int status = 0;
    const pid_t r = ::waitpid(eps_[rank].pid, &status, WNOHANG);
    if (r == eps_[rank].pid) {
      eps_[rank].pid = -1;
      if (WIFEXITED(status)) {
        std::fprintf(stderr, "emst distributed engine: rank %zu exited with status %d\n",
                     rank, WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        std::fprintf(stderr, "emst distributed engine: rank %zu killed by signal %d\n",
                     rank, WTERMSIG(status));
      }
    } else {
      std::fprintf(stderr, "emst distributed engine: rank %zu still running\n",
                   rank);
    }
  }
  if (rank < eps_.size() && eps_[rank].log_next > 0) {
    const Endpoint& ep = eps_[rank];
    std::fprintf(stderr,
                 "emst distributed engine: recent collectives with rank %zu:\n",
                 rank);
    const std::size_t first =
        ep.log_next > kCollectiveLogSize ? ep.log_next - kCollectiveLogSize : 0;
    for (std::size_t i = first; i < ep.log_next; ++i) {
      const CollectiveLogEntry& e = ep.log[i % kCollectiveLogSize];
      std::fprintf(stderr,
                   "  #%zu %s round=%llu count=%u hash=%016llx\n", i,
                   opcode_name(e.opcode),
                   static_cast<unsigned long long>(e.round), e.count,
                   static_cast<unsigned long long>(e.hash));
    }
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace emst::sim::dist
