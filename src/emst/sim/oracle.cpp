#include "emst/sim/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace emst::sim {
namespace {

/// Minimal union-find for the fragment-forest check (path halving, union by
/// index — determinism matters more than asymptotics at oracle cadence).
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false when x and y were already connected (a cycle).
  bool unite(std::size_t x, std::size_t y) {
    const std::size_t rx = find(x);
    const std::size_t ry = find(y);
    if (rx == ry) return false;
    parent_[rx < ry ? ry : rx] = rx < ry ? rx : ry;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

std::string format(const char* fmt, auto... args) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return std::string(buffer);
}

}  // namespace

void InvariantOracle::note(std::string_view invariant, std::uint64_t round,
                           std::string detail, EnergyMeter* meter) {
  violations_.push_back({std::string(invariant), round, std::move(detail)});
  if (meter != nullptr) {
    // Mirror the violation into the trace so offline tooling sees it at the
    // exact round it fired. Oracle events carry no frame: zero the ambient
    // wire-size context for the stamp, like round ticks do.
    const std::uint32_t ambient_bits = meter->bits();
    meter->clear_bits();
    meter->note_event(EventType::kOracleViolation, kNoEventNode, kNoEventNode,
                      0.0, violations_.size());
    meter->set_bits(ambient_bits);
  }
}

void InvariantOracle::on_round(std::uint64_t round, EnergyMeter& meter) {
  if (options_.max_rounds != 0 && round > options_.max_rounds &&
      !liveness_tripped_) {
    liveness_tripped_ = true;
    note("liveness", round,
         format("round %llu exceeds the %llu-round liveness bound",
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(options_.max_rounds)),
         &meter);
  }
  if (!options_.check_energy || !meter.breakdown_enabled()) return;
  // Conservation across the breakdown matrix: the per-phase row sums
  // (phase_total — THE definition every consumer derives from) must
  // reassemble the Accounting totals. Energy within tolerance (different
  // summation orders); message counts exactly.
  const EnergyBreakdown& matrix = meter.breakdown();
  Accounting reassembled;
  for (std::size_t p = 0; p < EnergyBreakdown::kPhases; ++p)
    reassembled += matrix.phase_total(static_cast<PhaseTag>(p));
  const Accounting& totals = meter.totals();
  const double scale = std::max(std::abs(totals.energy), 1.0);
  if (std::abs(reassembled.energy - totals.energy) >
      options_.energy_rel_tol * scale) {
    note("energy", round,
         format("breakdown row sums %.17g != meter total %.17g",
                reassembled.energy, totals.energy),
         &meter);
  }
  if (reassembled.unicasts != totals.unicasts ||
      reassembled.broadcasts != totals.broadcasts) {
    note("energy", round,
         format("breakdown message counts %llu+%llu != totals %llu+%llu",
                static_cast<unsigned long long>(reassembled.unicasts),
                static_cast<unsigned long long>(reassembled.broadcasts),
                static_cast<unsigned long long>(totals.unicasts),
                static_cast<unsigned long long>(totals.broadcasts)),
         &meter);
  }
}

void InvariantOracle::check_fragments(std::uint64_t round,
                                      std::span<const graph::NodeId> leaders,
                                      std::span<const graph::Edge> tree,
                                      EnergyMeter* meter) {
  if (!options_.check_fragments || leaders.empty()) return;
  const std::size_t n = leaders.size();
  Dsu dsu(n);
  for (const graph::Edge& e : tree) {
    if (e.u >= n || e.v >= n) {
      note("fragments", round,
           format("tree edge (%u,%u) references nodes outside [0,%zu)", e.u,
                  e.v, n),
           meter);
      return;
    }
    if (!dsu.unite(e.u, e.v)) {
      note("fragments", round,
           format("tree edge (%u,%u) closes a cycle in the fragment forest",
                  e.u, e.v),
           meter);
      return;
    }
  }
  // Leader labelling must agree with tree connectivity: every node carries
  // the same leader as its component, and that leader lives in the
  // component (so fragments have exactly one leader each).
  for (std::size_t u = 0; u < n; ++u) {
    const graph::NodeId leader = leaders[u];
    if (leader >= n) {
      note("fragments", round,
           format("node %zu has out-of-range leader %u", u, leader), meter);
      return;
    }
    const std::size_t root = dsu.find(u);
    if (leader != leaders[root] || dsu.find(leader) != root) {
      note("fragments", round,
           format("node %zu (leader %u) disagrees with its component "
                  "(root %zu, leader %u)",
                  u, leader, root, leaders[root]),
           meter);
      return;
    }
  }
}

void InvariantOracle::check_energy_deep(std::uint64_t round,
                                        EnergyMeter& meter) {
  if (!options_.check_energy) return;
  const std::vector<double>& ledger = meter.per_node();
  const Telemetry* telemetry = meter.telemetry();
  if (ledger.empty() || telemetry == nullptr || !telemetry->aggregating())
    return;
  const std::vector<double>& aggregate = telemetry->aggregate().node_energy;
  if (aggregate.size() != ledger.size()) {
    note("energy", round,
         format("telemetry aggregate tracks %zu nodes, meter ledger %zu",
                aggregate.size(), ledger.size()),
         &meter);
    return;
  }
  // Both arrays fold the identical per-charge cost sequence in charge order,
  // so they must agree bitwise — any drift means a charge bypassed the
  // meter chokepoint (or telemetry saw an event the meter never charged).
  for (std::size_t u = 0; u < ledger.size(); ++u) {
    if (ledger[u] != aggregate[u]) {
      note("energy", round,
           format("node %zu: meter ledger %.17g != telemetry aggregate %.17g",
                  u, ledger[u], aggregate[u]),
           &meter);
      return;
    }
  }
}

void InvariantOracle::on_arq_deliver(graph::NodeId from, graph::NodeId to,
                                     std::uint32_t seq, EnergyMeter* meter) {
  if (!options_.check_arq) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  const auto slot = arq_next_.find_or_insert(key, 0);
  if (seq < *slot.value) {
    note("arq", 0,
         format("link %u->%u re-delivered seq %u (next expected %llu)", from,
                to, seq, static_cast<unsigned long long>(*slot.value)),
         meter);
    return;
  }
  *slot.value = static_cast<std::uint64_t>(seq) + 1;
}

}  // namespace emst::sim
