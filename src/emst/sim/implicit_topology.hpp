// Implicit (memory-lean) topology backend.
//
// Same surface as sim::Topology, but neighbourhoods are regenerated on
// demand from the cell grid instead of being stored: the only O(n)-sized
// state is the point array and the grid's CSR buckets, so a 10^7-node
// unit-disk instance fits where the materialized Θ(n log n)-entry adjacency
// cannot allocate (docs/PERF.md, "Scaling to ten million nodes").
//
// Bitwise-identity contract with the materialized backend:
//  * membership — pair (u,v) is a neighbour iff
//    distance_sq(points[v], points[u]) <= fl(max_radius²), the exact
//    predicate rgg::build_rgg's grid query evaluates (distance_sq is
//    bitwise symmetric, so querying from either endpoint agrees);
//  * weights — w = distance(points[u], points[v]) = sqrt(distance_sq),
//    identical to the stored CSR weight;
//  * order — enumeration is sorted ascending (weight, id), the canonical
//    neighbour order AdjacencyList guarantees;
//  * sub-radius — neighbors_within(u, r) applies BOTH predicates
//    (membership ∧ w <= r), matching the materialized prefix that
//    upper-bounds on w. The two-predicate rule matters at the radius
//    boundary, where sqrt rounding can put w a ulp above max_radius.
//
// neighbors()/neighbors_within() return spans into a thread-local scratch
// buffer: valid until the next neighbour query on the same thread. Every
// engine and driver call site either copies the span out (Network's
// receiver staging) or finishes with it before the next query; the sharded
// engine stages broadcasts from worker threads, which is why the scratch is
// thread-local rather than per-topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/adjacency.hpp"
#include "emst/spatial/cell_grid.hpp"

namespace emst::sim {

using NodeId = graph::NodeId;

class ImplicitTopology {
 public:
  /// Index `points` with maximum transmission radius `max_radius`. The grid
  /// cell size mirrors Topology's (cell = max_radius, clamped), so
  /// nodes_within() enumerates candidates in the identical grid order.
  ImplicitTopology(std::vector<geometry::Point2> points, double max_radius);

  ImplicitTopology(ImplicitTopology&&) noexcept = default;
  ImplicitTopology& operator=(ImplicitTopology&&) noexcept = default;

  [[nodiscard]] std::size_t node_count() const noexcept { return points_.size(); }
  [[nodiscard]] double max_radius() const noexcept { return max_radius_; }
  [[nodiscard]] const std::vector<geometry::Point2>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] geometry::Point2 position(NodeId u) const { return points_[u]; }

  [[nodiscard]] double distance(NodeId u, NodeId v) const {
    return geometry::distance(points_[u], points_[v]);
  }

  /// Neighbors of u within the max radius, ascending (weight, id).
  /// Span into thread-local scratch — valid until the next neighbour query
  /// on this thread.
  [[nodiscard]] std::span<const graph::Neighbor> neighbors(NodeId u) const;

  /// Neighbors of u with w <= radius, ascending (weight, id). Same scratch
  /// lifetime as neighbors().
  [[nodiscard]] std::span<const graph::Neighbor> neighbors_within(
      NodeId u, double radius) const;

  /// All nodes (other than u) within Euclidean `radius` of u, in grid
  /// enumeration order — identical to Topology::nodes_within.
  [[nodiscard]] std::vector<NodeId> nodes_within(NodeId u, double radius) const;

  /// Number of undirected edges at the max radius. Computed exactly by one
  /// counting sweep on first call (O(n·deg)), then cached. First call is
  /// not thread-safe; drivers take it during single-threaded setup.
  [[nodiscard]] std::size_t edge_count() const;

  /// Build the global canonical edge-rank table so Neighbor::edge_index is
  /// populated (classic GHS names fragments by edge index). Materializes
  /// O(m) keys — call only where the materialized backend would fit anyway.
  void ensure_edge_ranks() const;
  [[nodiscard]] bool has_edge_ranks() const noexcept {
    return !edge_ranks_.empty();
  }

  /// Rank of canonical pair (u,v) in the (weight, u, v)-sorted edge order.
  /// Requires ensure_edge_ranks().
  [[nodiscard]] std::uint32_t edge_rank(NodeId u, NodeId v) const;

 private:
  std::vector<geometry::Point2> points_;
  double max_radius_ = 0.0;
  double rmax_sq_ = 0.0;
  std::unique_ptr<spatial::CellGrid> grid_;  // indexes points_
  mutable std::size_t edge_count_ = kUnknownEdgeCount;
  mutable std::vector<std::uint64_t> edge_ranks_;  // packed (u<<32)|v, sorted

  static constexpr std::size_t kUnknownEdgeCount = static_cast<std::size_t>(-1);

  [[nodiscard]] std::span<const graph::Neighbor> fill_scratch(
      NodeId u, double radius, bool filter_by_weight) const;
};

/// Customization point used by drivers that need Neighbor::edge_index.
/// No-op for the materialized backend (the CSR already carries indices).
inline void prepare_edge_indices(const ImplicitTopology& topo) {
  topo.ensure_edge_ranks();
}

}  // namespace emst::sim
