// Engine-generic construction for the engine-templated drivers.
//
// The drivers (classic GHS, the Co-NNT actor) are templated on the network
// engine so the calendar-queue `Network`, the `ReferenceNetwork` oracle, the
// sharded parallel engine and the process-level distributed engine all
// execute the exact same protocol code. The engines differ in one trailing
// constructor parameter — `ShardedNetwork` takes a thread count,
// `DistributedNetwork` a rank count — and `make_engine` papers over that:
// the size argument is forwarded only to engines whose constructor accepts
// it, and distributed engines (marked by `kDistributedEngine`) receive
// `ranks` where sharded ones receive `threads`. Guaranteed copy elision
// makes this work even for non-movable engines (`ShardedNetwork` owns a
// worker pool, `DistributedNetwork` a process group): the returned prvalue
// materializes directly into the driver's member.
#pragma once

#include <cstddef>
#include <type_traits>

#include "emst/sim/fault.hpp"
#include "emst/sim/network.hpp"
#include "emst/sim/telemetry.hpp"
#include "emst/sim/topology.hpp"

namespace emst::sim {

/// True for engines whose trailing constructor size means forked rank
/// processes rather than shard threads (distributed_network.hpp).
template <typename Engine>
concept DistributedEngine = requires { Engine::kDistributedEngine; };

template <typename Engine, typename Topo = Topology>
[[nodiscard]] Engine make_engine(const Topo& topo,
                                 geometry::PathLoss pathloss,
                                 bool unbounded_broadcast, DelayModel delays,
                                 FaultModel faults, Telemetry* telemetry,
                                 std::size_t threads, std::size_t ranks = 0) {
  if constexpr (DistributedEngine<Engine>) {
    return Engine(topo, pathloss, unbounded_broadcast, delays, faults,
                  telemetry, ranks);
  } else if constexpr (std::is_constructible_v<
                           Engine, const Topo&, geometry::PathLoss, bool,
                           DelayModel, FaultModel, Telemetry*, std::size_t>) {
    return Engine(topo, pathloss, unbounded_broadcast, delays, faults,
                  telemetry, threads);
  } else {
    return Engine(topo, pathloss, unbounded_broadcast, delays, faults,
                  telemetry);
  }
}

}  // namespace emst::sim
