// Engine-side wire-format hook.
//
// The paper's energy model assumes O(log n)-bit messages (§II; the Ω(log n)
// lower bound of Thm 4.1 depends on it), but the meter charges d^α per
// message regardless of size. To *measure* bits-on-air, every message type
// may declare a wire format: `WireFormat<Msg>` is the customization point
// the engines consult at send time. The primary template reports 0 bits
// (unmeasured — raw engine traffic, test payloads); the proto layer
// (emst/proto/) specializes it for each driver's message vocabulary.
//
// Layering: this header knows nothing about the codec itself — it only
// defines the hook. Engines (`Network`, `ReferenceNetwork`,
// `ShardedNetwork`) hold a `WireFormat<Msg>` instance and stamp
// `meter.set_bits(wire.bits(msg))` before every charge, so the bit count
// rides the same context channel as the message kind and fragment id and
// lands in `Accounting::bits`, the breakdown matrix and telemetry events.
// Specializations are configured by the driver through the engine's
// `wire_format()` accessor (they typically carry a `proto::WireContext`
// sized from the topology).
#pragma once

#include <cstdint>

namespace emst::sim {

/// Wire size of one ARQ framing header: 1 ack/data flag bit + a 16-bit
/// sequence number. Charged on top of the payload for every DATA frame and
/// alone for every ACK — by `ArqLink` (closed form) and `ReliableChannel`
/// (real frames) identically, so the two ARQ faces bill the same bits for
/// the same fate sequence.
inline constexpr std::uint32_t kArqHeaderBits = 17;

/// Customization point: specialize for a message type to teach the engines
/// its encoded size. Specializations must provide
/// `std::uint32_t bits(const Msg&) const` and set `kMeasured = true`.
/// The primary template reports 0 bits — "no codec" — so existing message
/// types keep working unmeasured.
template <typename Msg>
struct WireFormat {
  static constexpr bool kMeasured = false;
  [[nodiscard]] std::uint32_t bits(const Msg&) const noexcept { return 0; }
};

}  // namespace emst::sim
