#include "emst/sim/topology.hpp"

#include "emst/support/assert.hpp"

namespace emst::sim {

Topology::Topology(std::vector<geometry::Point2> points, double max_radius)
    : Topology(rgg::build_rgg(std::move(points), max_radius)) {}

Topology::Topology(rgg::Rgg instance)
    : points_(std::move(instance.points)),
      max_radius_(instance.radius),
      graph_(std::move(instance.graph)) {
  EMST_ASSERT(max_radius_ > 0.0);
  grid_ = std::make_unique<spatial::CellGrid>(
      std::span<const geometry::Point2>(points_), max_radius_);
}

Topology::Topology(std::vector<geometry::Point2> points, double max_radius,
                   std::vector<graph::Edge> edges)
    : points_(std::move(points)),
      max_radius_(max_radius),
      graph_(points_.size(), edges) {
  EMST_ASSERT(max_radius_ > 0.0);
  for (const graph::Edge& e : graph_.edges())
    EMST_ASSERT_MSG(e.w <= max_radius_ * (1.0 + 1e-12),
                    "explicit edge exceeds the maximum transmission radius");
  grid_ = std::make_unique<spatial::CellGrid>(
      std::span<const geometry::Point2>(points_), max_radius_);
}

std::vector<NodeId> Topology::nodes_within(NodeId u, double radius) const {
  EMST_ASSERT(u < points_.size());
  std::vector<NodeId> out;
  grid_->for_each_within(points_[u], radius, [&](spatial::PointIndex i) {
    if (i != u) out.push_back(i);
  });
  return out;
}

}  // namespace emst::sim
