#include "emst/sim/topology.hpp"

#include "emst/support/assert.hpp"

namespace emst::sim {

namespace {

// Network::broadcast's bounded path early-exits on the first neighbor whose
// weight exceeds the power radius — correct only if every node's neighbor
// range is ascending in weight. AdjacencyList guarantees that today, but the
// hot loop must not silently depend on it: check the invariant once here,
// at construction, rather than per broadcast.
void assert_neighbors_weight_sorted(const graph::AdjacencyList& graph) {
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const auto nbs = graph.neighbors(u);
    for (std::size_t i = 1; i < nbs.size(); ++i) {
      EMST_ASSERT_MSG(nbs[i - 1].w <= nbs[i].w,
                      "topology neighbors must be sorted by weight");
    }
  }
}

}  // namespace

Topology::Topology(std::vector<geometry::Point2> points, double max_radius)
    : Topology(rgg::build_rgg(std::move(points), max_radius)) {}

Topology::Topology(rgg::Rgg instance)
    : points_(std::move(instance.points)),
      max_radius_(instance.radius),
      graph_(std::move(instance.graph)) {
  EMST_ASSERT(max_radius_ > 0.0);
  assert_neighbors_weight_sorted(graph_);
  grid_ = std::make_unique<spatial::CellGrid>(
      std::span<const geometry::Point2>(points_), max_radius_);
}

Topology::Topology(std::vector<geometry::Point2> points, double max_radius,
                   std::vector<graph::Edge> edges)
    : points_(std::move(points)),
      max_radius_(max_radius),
      graph_(points_.size(), std::move(edges)) {
  EMST_ASSERT(max_radius_ > 0.0);
  for (const graph::Edge& e : graph_.edges())
    EMST_ASSERT_MSG(e.w <= max_radius_ * (1.0 + 1e-12),
                    "explicit edge exceeds the maximum transmission radius");
  assert_neighbors_weight_sorted(graph_);
  grid_ = std::make_unique<spatial::CellGrid>(
      std::span<const geometry::Point2>(points_), max_radius_);
}

std::vector<NodeId> Topology::nodes_within(NodeId u, double radius) const {
  EMST_ASSERT(u < points_.size());
  std::vector<NodeId> out;
  grid_->for_each_within(points_[u], radius, [&](spatial::PointIndex i) {
    if (i != u) out.push_back(i);
  });
  return out;
}

}  // namespace emst::sim
