// Adversarial fault strategies (docs/ROBUSTNESS.md).
//
// PR 2's `FaultModel` attacks the protocols blindly: Bernoulli coins and a
// crash schedule fixed before the run starts. A `FaultController` attacks
// them where they are weakest — it is consulted by the `FaultInjector` every
// time the fault clock advances, sees a read-only snapshot of live protocol
// state (`ChaosView`: round, awake set, fragment census, in-flight count),
// and answers with crash windows to inject *now*. Injections behave exactly
// like pre-scripted `FaultModel::crashes` entries and are recorded in
// `FaultInjector::injected_schedule()`, so every adversarial run collapses
// back to a plain, reproducible crash list (the `ReplaySchedule` strategy
// and the static-schedule equivalence test pin this).
//
// Determinism: the injector consults the controller only from the serial
// sections that own the fault clock (engine round barriers, the sync-GHS
// driver's ticks), with a view built from state that is itself
// bitwise-identical across engines and thread counts. A strategy that is a
// pure function of its view therefore injects the same schedule at 1, 2 and
// 4 threads — pinned by tests/chaos_test.cpp.
//
// Every shipped strategy kills permanently (`kCrashForever`, fail-stop) and
// respects a kill budget (default 20% of the deployment — the acceptance
// envelope under which all four drivers must stay exact on the surviving
// components). This is also the seam a future SINR interference model plugs
// into: a channel-quality controller is just a strategy that consults the
// same view (ROADMAP item 2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "emst/geometry/point.hpp"
#include "emst/graph/edge.hpp"
#include "emst/sim/fault.hpp"

namespace emst::sim {

/// Read-only snapshot of live protocol state, handed to the controller once
/// per fault-clock round. Spans reference engine/driver state that is stable
/// for the duration of the consult; copy anything you need to keep.
struct ChaosView {
  std::uint64_t round = 0;
  /// True on the first consult after the driver marked a phase boundary
  /// (`FaultInjector::note_phase_boundary`); always false for drivers
  /// without a phase structure.
  bool at_phase_boundary = false;
  std::size_t node_count = 0;
  /// Deployment coordinates (engines publish these at construction).
  std::span<const geometry::Point2> points{};
  /// Fragment census published by the driver (`proto::FragmentSet` leaders
  /// and tree edges). Empty for drivers that keep no explicit fragment
  /// state (classic GHS actors, Co-NNT) — strategies must degrade
  /// deterministically when it is.
  std::span<const graph::NodeId> leaders{};
  std::span<const graph::Edge> tree{};
  /// Messages routed but not yet delivered at this round's barrier.
  std::size_t in_flight = 0;
  const FaultInjector* injector = nullptr;

  /// Is `u` up at the current fault clock (crashes injected in earlier
  /// consults included)?
  [[nodiscard]] bool alive(graph::NodeId u) const {
    return injector == nullptr || !injector->crashed(u);
  }
};

/// Strategy interface the `FaultInjector` consults each round. Implementors
/// must be deterministic functions of the view and their own state, and must
/// not touch wall clocks or global RNGs — determinism across engines and
/// thread counts depends on it. One controller instance drives one run.
class FaultController {
 public:
  virtual ~FaultController() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Append crash windows to inject at this round. `window.from` is clamped
  /// up to the current round by the injector; `until == kCrashForever`
  /// means permanent fail-stop.
  virtual void on_round(const ChaosView& view,
                        std::vector<CrashWindow>& out) = 0;
};

/// Shared kill-budget bookkeeping: a strategy never crashes more than
/// `max_fraction` of the deployment. The default is the 20% fail-stop
/// envelope of the graceful-degradation contract (docs/ROBUSTNESS.md).
class BudgetedController : public FaultController {
 public:
  void set_max_fraction(double fraction) noexcept { max_fraction_ = fraction; }
  [[nodiscard]] std::size_t kills() const noexcept { return killed_; }

 protected:
  [[nodiscard]] std::size_t remaining_budget(std::size_t node_count) const {
    const auto cap = static_cast<std::size_t>(
        max_fraction_ * static_cast<double>(node_count));
    return cap > killed_ ? cap - killed_ : 0;
  }
  /// Emit one permanent kill of a live node and account for it.
  void kill(const ChaosView& view, graph::NodeId victim,
            std::vector<CrashWindow>& out) {
    out.push_back({victim, view.round, kCrashForever});
    ++killed_;
  }

  double max_fraction_ = 0.2;
  std::size_t killed_ = 0;
};

/// Kill the leader of the largest live fragment on a fixed cadence — the
/// worst single node to lose mid-merge (every in-flight INITIATE/REPORT
/// wave of that fragment dies with it). Without a published census it
/// degrades to killing the smallest live node id.
class KillLeader final : public BudgetedController {
 public:
  explicit KillLeader(std::uint64_t period = 8, std::uint64_t first = 8)
      : period_(period), first_(first) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "kill_leader";
  }
  void on_round(const ChaosView& view, std::vector<CrashWindow>& out) override;

 private:
  std::uint64_t period_;
  std::uint64_t first_;
};

/// Kill BOTH endpoints of the minimum-weight live fragment-tree edge — the
/// repository's edge order makes that the first-merged, core-most edge —
/// splitting an established fragment through its middle. Degrades to the
/// two smallest live ids when no tree is published.
class SeverCoreEdge final : public BudgetedController {
 public:
  explicit SeverCoreEdge(std::uint64_t period = 8, std::uint64_t first = 8)
      : period_(period), first_(first) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sever_core_edge";
  }
  void on_round(const ChaosView& view, std::vector<CrashWindow>& out) override;

 private:
  std::uint64_t period_;
  std::uint64_t first_;
};

/// One-shot separator attack: at `at_round`, crash the nodes closest to the
/// x = 0.5 line (budget-capped) — the cheapest cut that can disconnect a
/// random geometric deployment into two surviving halves. Degrades to the
/// smallest live ids when no coordinates are published.
class PartitionHalf final : public BudgetedController {
 public:
  explicit PartitionHalf(std::uint64_t at_round = 8) : at_round_(at_round) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "partition_half";
  }
  void on_round(const ChaosView& view, std::vector<CrashWindow>& out) override;

 private:
  std::uint64_t at_round_;
};

/// Crash a wave of nodes spread across the id space at every phase boundary
/// the driver marks — the moment fragment state is being rebuilt. Drivers
/// without phase marks fall back to a fixed round cadence.
class CrashWaveAtPhaseBoundary final : public BudgetedController {
 public:
  explicit CrashWaveAtPhaseBoundary(std::size_t wave = 2,
                                    std::uint64_t fallback_period = 16)
      : wave_(wave), fallback_period_(fallback_period) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "crash_wave";
  }
  void on_round(const ChaosView& view, std::vector<CrashWindow>& out) override;

 private:
  std::size_t wave_;
  std::uint64_t fallback_period_;
};

/// Replay a recorded schedule through the controller interface: each window
/// is injected at its `from` round. Feeding a run's `injected_schedule()`
/// back through this strategy — or as a plain `FaultModel::crashes` list —
/// reproduces the adversarial run bit-for-bit (tested).
class ReplaySchedule final : public FaultController {
 public:
  explicit ReplaySchedule(std::vector<CrashWindow> schedule);
  [[nodiscard]] std::string_view name() const noexcept override {
    return "replay";
  }
  void on_round(const ChaosView& view, std::vector<CrashWindow>& out) override;

 private:
  std::vector<CrashWindow> schedule_;  ///< sorted by (from, node)
  std::size_t cursor_ = 0;
};

/// Construct a shipped strategy by name ("kill_leader", "sever_core_edge",
/// "partition_half", "crash_wave") — the bench/CLI registry. Returns null
/// for unknown names.
[[nodiscard]] std::unique_ptr<BudgetedController> make_controller(
    std::string_view name);

/// Names of every shipped adversarial strategy, in campaign order.
[[nodiscard]] std::span<const std::string_view> shipped_strategies();

/// Delta-minimize a failing crash schedule (ddmin): returns a 1-minimal
/// sublist of `schedule` on which `trips` still returns true — removing any
/// single remaining window makes the failure disappear. `trips` must be
/// deterministic; it is called O(k·log k + k²/chunk) times. Returns an empty
/// list if the full schedule does not trip the predicate.
[[nodiscard]] std::vector<CrashWindow> minimize_crashes(
    std::span<const CrashWindow> schedule,
    const std::function<bool(std::span<const CrashWindow>)>& trips);

}  // namespace emst::sim
