#include "emst/support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace emst::support {

Cli::Cli(int argc, const char* const* argv, std::map<std::string, std::string> spec)
    : spec_(std::move(spec)) {
  spec_.emplace("help", "show this help");
  const std::string program = argc > 0 ? argv[0] : "emst";
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", token.c_str());
      usage_and_exit(program);
    }
    token.erase(0, 2);
    std::string value = "true";
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (spec_.find(token) == spec_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", token.c_str());
      usage_and_exit(program);
    }
    values_[token] = value;
  }
  if (has("help")) usage_and_exit(program);
}

void Cli::usage_and_exit(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, help] : spec_)
    std::fprintf(stderr, "  --%-18s %s\n", name.c_str(), help.c_str());
  std::exit(2);
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name,
                                            std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    if (!piece.empty()) out.push_back(std::stoll(piece));
  }
  return out;
}

}  // namespace emst::support
