#include "emst/support/parallel.hpp"

#include <cstdlib>

namespace emst::support {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("EMST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace emst::support
