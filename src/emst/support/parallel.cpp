#include "emst/support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace emst::support {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("EMST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
}

}  // namespace emst::support
