#include "emst/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "emst/support/assert.hpp"
#include "emst/support/rng.hpp"

namespace emst::support {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  EMST_ASSERT(!sorted.empty());
  EMST_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  RunningStats rs;
  for (double x : sample) rs.add(x);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.sem = rs.sem();
  s.min = rs.min();
  s.max = rs.max();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  return s;
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  EMST_ASSERT(x.size() == y.size());
  EMST_ASSERT(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LineFit fit;
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

Interval bootstrap_mean_ci(std::span<const double> sample, Rng& rng,
                           std::size_t resamples, double confidence) {
  EMST_ASSERT(confidence > 0.0 && confidence < 1.0);
  if (sample.empty()) return {};
  if (sample.size() == 1) return {sample[0], sample[0]};
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    double total = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      total += sample[rng.uniform_int(sample.size())];
    }
    means.push_back(total / static_cast<double>(sample.size()));
  }
  std::sort(means.begin(), means.end());
  const double tail = (1.0 - confidence) / 2.0;
  return {quantile_sorted(means, tail), quantile_sorted(means, 1.0 - tail)};
}

}  // namespace emst::support
