// Minimal `--flag=value` / `--flag value` command-line parsing for the
// benches and examples. No external dependency; unknown flags are an error
// so typos in sweep scripts fail fast instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace emst::support {

class Cli {
 public:
  /// Parse argv. `spec` maps flag name (without dashes) to a help string;
  /// flags not in the spec abort with a usage message.
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> spec);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --ns=100,500,1000.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

 private:
  void usage_and_exit(const std::string& program) const;

  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
};

}  // namespace emst::support
