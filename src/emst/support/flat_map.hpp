// Open-addressing hash map from nonzero 64-bit keys to 64-bit values.
//
// Purpose-built for hot bookkeeping tables like the simulator's per-edge
// FIFO tracker (key = packed directed edge, value = last scheduled due
// round). std::unordered_map allocates a node per insert and chases a
// pointer per lookup, which dominated Network::enqueue under random delays.
// This map keeps everything in one flat power-of-two array with linear
// probing: inserts are amortized O(1) with no per-element allocation, and a
// lookup touches one cache line in the common case. Erase is deliberately
// unsupported (the tracker only grows within a run), which keeps probing
// tombstone-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "emst/support/assert.hpp"

namespace emst::support {

class FlatMap64 {
 public:
  FlatMap64() = default;

  struct FindResult {
    std::uint64_t* value;  ///< stored value; invalidated by the next insert
    bool inserted;         ///< true if `key` was absent and was added
  };

  /// Find `key`, inserting it with `value` if absent. Key 0 is reserved as
  /// the empty-slot sentinel (the simulator packs directed edges (u,v) with
  /// u != v, so 0 never occurs there).
  FindResult find_or_insert(std::uint64_t key, std::uint64_t value) {
    EMST_ASSERT_MSG(key != 0, "key 0 is the empty-slot sentinel");
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    for (;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return {&slot.value, false};
      if (slot.key == 0) {
        slot.key = key;
        slot.value = value;
        ++size_;
        return {&slot.value, true};
      }
    }
  }

  /// Pre-size the table for `n` keys without rehashing along the way.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
  };

  static constexpr std::size_t kMinCapacity = 16;

  /// splitmix64 finalizer — full-avalanche so linear probing sees a uniform
  /// distribution even for structured keys like (u << 32) | v.
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void grow() { rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2); }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.key == 0) continue;
      std::size_t i = mix(slot.key) & mask;
      while (slots_[i].key != 0) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace emst::support
