// Minimal streaming JSON writer (no DOM, no dependency) for machine-readable
// experiment output (`examples/emst_cli --format=json`).
//
// Usage:
//   JsonWriter json(os);
//   json.begin_object();
//   json.key("n").value(2000);
//   json.key("algorithms").begin_array();
//   ... json.end_array();
//   json.end_object();
//
// The writer validates nesting with assertions and handles string escaping
// and non-finite doubles (emitted as null, per RFC 8259's exclusion).
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "emst/support/assert.hpp"

namespace emst::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true)
      : os_(os), pretty_(pretty) {}

  JsonWriter& begin_object() {
    start_value();
    os_ << '{';
    stack_.push_back(Frame{Container::kObject, 0});
    return *this;
  }

  JsonWriter& end_object() {
    EMST_ASSERT_MSG(!stack_.empty() && stack_.back().container == Container::kObject,
                    "end_object without matching begin_object");
    const bool had_items = stack_.back().count > 0;
    stack_.pop_back();
    if (had_items) newline_indent();
    os_ << '}';
    return *this;
  }

  JsonWriter& begin_array() {
    start_value();
    os_ << '[';
    stack_.push_back(Frame{Container::kArray, 0});
    return *this;
  }

  JsonWriter& end_array() {
    EMST_ASSERT_MSG(!stack_.empty() && stack_.back().container == Container::kArray,
                    "end_array without matching begin_array");
    const bool had_items = stack_.back().count > 0;
    stack_.pop_back();
    if (had_items) newline_indent();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    EMST_ASSERT_MSG(!stack_.empty() && stack_.back().container == Container::kObject,
                    "key() is only valid inside an object");
    EMST_ASSERT_MSG(!pending_key_, "key() called twice without a value");
    separator();
    write_string(name);
    os_ << (pretty_ ? ": " : ":");
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    start_value();
    write_string(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag) {
    start_value();
    os_ << (flag ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double number) {
    start_value();
    if (!std::isfinite(number)) {
      os_ << "null";  // JSON has no Inf/NaN
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.12g", number);
      os_ << buffer;
    }
    return *this;
  }
  JsonWriter& value(std::int64_t number) {
    start_value();
    os_ << number;
    return *this;
  }
  JsonWriter& value(std::uint64_t number) {
    start_value();
    os_ << number;
    return *this;
  }
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& null() {
    start_value();
    os_ << "null";
    return *this;
  }

  /// True when every container has been closed (document complete).
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && !pending_key_;
  }

 private:
  enum class Container : std::uint8_t { kObject, kArray };
  struct Frame {
    Container container;
    std::size_t count;
  };

  void separator() {
    if (stack_.back().count > 0) os_ << ',';
    ++stack_.back().count;
    newline_indent();
  }

  void start_value() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // the key already emitted the separator
    }
    if (!stack_.empty()) {
      EMST_ASSERT_MSG(stack_.back().container == Container::kArray,
                      "bare value inside an object requires key()");
      separator();
    }
  }

  void newline_indent() {
    if (!pretty_) return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view text) {
    os_ << '"';
    for (const char ch : text) {
      switch (ch) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
            os_ << buffer;
          } else {
            os_ << ch;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  bool pretty_;
  bool pending_key_ = false;
  std::vector<Frame> stack_;
};

}  // namespace emst::support
