// Thread-parallel trial execution.
//
// Monte-Carlo sweeps (20+ trials per table row) are embarrassingly parallel:
// each trial gets a deterministic stream seed derived from (master seed,
// trial index), so results are identical regardless of thread count or
// scheduling (CppCoreGuidelines CP.2: no data races — each trial writes only
// its own slot).
#pragma once

#include <cstddef>
#include <functional>

namespace emst::support {

/// Number of worker threads to use (hardware_concurrency, at least 1).
/// Honors the EMST_THREADS environment variable when set.
[[nodiscard]] std::size_t default_thread_count();

/// Run fn(i) for i in [0, count) across worker threads. Blocks until all
/// complete. Exceptions inside fn terminate (deliberate: a failed trial
/// invalidates the whole experiment).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace emst::support
