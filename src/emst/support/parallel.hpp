// Thread-parallel trial execution.
//
// Monte-Carlo sweeps (20+ trials per table row) are embarrassingly parallel:
// each trial gets a deterministic stream seed derived from (master seed,
// trial index), so results are identical regardless of thread count or
// scheduling (CppCoreGuidelines CP.2: no data races — each trial writes only
// its own slot).
//
// parallel_for is a template over the callback so the per-trial dispatch is
// a direct (inlinable) call rather than a std::function virtual hop — the
// callback runs once per trial inside every worker's fetch_add loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emst::support {

/// Number of worker threads to use (hardware_concurrency, at least 1).
/// Honors the EMST_THREADS environment variable when set.
[[nodiscard]] std::size_t default_thread_count();

/// Run fn(i) for i in [0, count) across worker threads. Blocks until all
/// complete. Exceptions inside fn terminate (deliberate: a failed trial
/// invalidates the whole experiment).
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
}

/// Persistent fork-join worker pool for per-round parallel sections
/// (ShardedNetwork runs two per simulated round; spawning threads each time
/// would dominate small rounds). `run(task, count)` executes task(i) for
/// i in [0, count) across the workers and blocks until all complete — the
/// mutex/condvar handoff establishes the happens-before edges between the
/// serial phases and the parallel section, so worker-written state can be
/// read by the caller after run() returns (and vice versa) without atomics.
///
/// With `workers == 0` the pool owns no threads and run() executes inline —
/// the single-threaded configuration takes exactly the serial code path.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  template <typename Fn>
  void run(Fn&& task, std::size_t count) {
    if (count == 0) return;
    if (threads_.empty() || count == 1) {
      for (std::size_t i = 0; i < count; ++i) task(i);
      return;
    }
    const std::function<void(std::size_t)> erased(std::ref(task));
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ = &erased;
      task_count_ = count;
      next_.store(0, std::memory_order_relaxed);
      busy_ = threads_.size();
      ++generation_;
      cv_.notify_all();
      done_cv_.wait(lock, [this] { return busy_ == 0; });
      task_ = nullptr;
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
        count = task_count_;
      }
      for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        (*task)(i);
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (--busy_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers on a new generation
  std::condition_variable done_cv_;  ///< wakes the caller when all are done
  std::uint64_t generation_ = 0;
  std::size_t busy_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::atomic<std::size_t> next_{0};
  bool stop_ = false;
  std::vector<std::jthread> threads_;
};

}  // namespace emst::support
