// Thread-parallel trial execution.
//
// Monte-Carlo sweeps (20+ trials per table row) are embarrassingly parallel:
// each trial gets a deterministic stream seed derived from (master seed,
// trial index), so results are identical regardless of thread count or
// scheduling (CppCoreGuidelines CP.2: no data races — each trial writes only
// its own slot).
//
// parallel_for is a template over the callback so the per-trial dispatch is
// a direct (inlinable) call rather than a std::function virtual hop — the
// callback runs once per trial inside every worker's fetch_add loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace emst::support {

/// Number of worker threads to use (hardware_concurrency, at least 1).
/// Honors the EMST_THREADS environment variable when set.
[[nodiscard]] std::size_t default_thread_count();

/// Run fn(i) for i in [0, count) across worker threads. Blocks until all
/// complete. Exceptions inside fn terminate (deliberate: a failed trial
/// invalidates the whole experiment).
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
}

}  // namespace emst::support
