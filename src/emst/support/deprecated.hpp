// Deprecation attribute gate for the legacy per-driver entry points.
//
// The public way to run an algorithm is the `emst::run` facade
// (emst/run.hpp); the four per-driver entry points remain available —
// pinned bitwise-identical, the facade dispatches straight to them — but
// new call sites should not appear. Translation units that legitimately
// need the expert surface (the facade itself, EOPT's internal Step-1/2
// calls, the harness, and tests that pin driver internals) define
// `EMST_NO_DEPRECATE` before including any driver header, which turns the
// attribute off for that TU only.
#pragma once

#if defined(EMST_NO_DEPRECATE)
#define EMST_DEPRECATED(msg)
#else
#define EMST_DEPRECATED(msg) [[deprecated(msg)]]
#endif
