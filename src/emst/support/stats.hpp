// Descriptive statistics and least-squares line fitting.
//
// The paper's Figure 3(b) claims that log(Energy) plotted against
// log log n is a straight line with slope b where Energy = c * log^b n;
// LineFit recovers that slope so the benchmark can verify b ≈ 2 / 1 / 0
// for GHS / EOPT / Co-NNT respectively.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emst::support {

/// Single-pass mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double sem() const noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full-sample summary including order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double sem = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarize a sample (copies + sorts internally; fine for trial counts).
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear interpolation quantile of a *sorted* sample, q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Ordinary least squares y = intercept + slope * x.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

[[nodiscard]] LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> sample);

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= lo && x <= hi;
  }
  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Percentile-bootstrap confidence interval for the MEAN of a sample:
/// resample with replacement `resamples` times, take the (1±conf)/2
/// quantiles of the resampled means. Deterministic given the Rng. Used by
/// the harness to report CI bands without distributional assumptions (trial
/// energies are skewed).
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> sample,
                                         class Rng& rng,
                                         std::size_t resamples = 2000,
                                         double confidence = 0.95);

}  // namespace emst::support
