#include "emst/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "emst/support/assert.hpp"

namespace emst::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), precision_(headers_.size(), 3) {
  EMST_ASSERT(!headers_.empty());
}

void Table::set_precision(std::size_t column, int digits) {
  EMST_ASSERT(column < precision_.size());
  precision_[column] = digits;
}

void Table::add_row(std::vector<Cell> row) {
  EMST_ASSERT_MSG(row.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(std::size_t column, const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<long long>(&cell)) return std::to_string(*integer);
  const double value = std::get<double>(cell);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision_[column], value);
  return buffer;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(c, row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rendered) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c == 0 ? "" : ",") << quote(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c == 0 ? "" : ",") << quote(format_cell(c, row[c]));
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream file(path);
  if (!file) {
    std::cerr << "emst: warning: cannot write CSV to " << path << '\n';
    return false;
  }
  write_csv(file);
  return true;
}

}  // namespace emst::support
