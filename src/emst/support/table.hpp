// Aligned console tables and CSV emission for the benchmark harnesses.
//
// Every figure/table bench prints (a) a human-readable aligned table that
// mirrors the rows the paper reports and (b) optionally a CSV file so the
// plots can be regenerated with any external tool.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace emst::support {

/// A table cell: text, integer, or floating point (formatted with
/// per-column precision).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Per-column decimal places for double cells (default 3).
  void set_precision(std::size_t column, int digits);

  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Render with aligned columns, a header rule, and right-aligned numbers.
  void print(std::ostream& os) const;

  /// Emit RFC-4180-ish CSV (quotes applied to cells containing separators).
  void write_csv(std::ostream& os) const;

  /// Convenience: write CSV to `path`, creating parent dirs if needed.
  /// Returns false (and prints a warning) if the file cannot be opened.
  bool save_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::string format_cell(std::size_t column, const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace emst::support
