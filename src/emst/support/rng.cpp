#include "emst/support/rng.hpp"

#include <cmath>

#include "emst/support/assert.hpp"

namespace emst::support {

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  EMST_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method with rejection to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  EMST_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain to avoid underflow.
    const double threshold = -mean;
    double accum = 0.0;
    std::uint64_t count = 0;
    for (;;) {
      accum += std::log(uniform());
      if (accum < threshold) return count;
      ++count;
    }
  }
  // Split λ = λ/2 + λ/2 recursively; depth is O(log λ), each leaf uses the
  // exact inversion above. Slower than PTRS but exact and branch-simple —
  // Poisson sampling is never on a hot path here (it is used once per
  // point-process instantiation).
  const std::uint64_t left = poisson(mean / 2.0);
  return left + poisson(mean - mean / 2.0);
}

}  // namespace emst::support
