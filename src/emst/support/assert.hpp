// Lightweight contract checking (CppCoreGuidelines I.6/I.8 style).
//
// EMST_ASSERT is active in all build types: the simulator and the
// distributed-algorithm drivers rely on invariants whose violation would
// silently corrupt experiment results, so we prefer a loud abort over a
// wrong table row.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace emst::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "emst: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace emst::support

#define EMST_ASSERT(expr)                                                    \
  ((expr) ? static_cast<void>(0)                                             \
          : ::emst::support::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define EMST_ASSERT_MSG(expr, msg)                                        \
  ((expr) ? static_cast<void>(0)                                          \
          : ::emst::support::assert_fail(#expr, __FILE__, __LINE__, msg))
