// Deterministic, splittable pseudo-random number generation.
//
// Every experiment in this repository is seeded explicitly so that any table
// row can be regenerated bit-for-bit. We use xoshiro256** (Blackman/Vigna)
// seeded through splitmix64, which is the recommended seeding procedure and
// also gives us cheap derivation of statistically independent child streams
// (one per trial, one per thread) without the correlation pitfalls of
// `seed + i`.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace emst::support {

/// One step of the splitmix64 sequence; also used as a seed mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 high bits, standard construction.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Poisson-distributed count. Exact inversion for small means, PTRS-style
  /// normal-tail decomposition for large means.
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Derive a statistically independent child stream (e.g. one per trial).
  [[nodiscard]] Rng split() noexcept {
    Rng child(0);
    std::uint64_t sm = (*this)();
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Deterministic child seed for stream `index` of a master seed: used when
  /// trials run on different threads but must not depend on scheduling order.
  [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t master,
                                                 std::uint64_t index) noexcept {
    std::uint64_t sm = master ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    std::uint64_t a = splitmix64(sm);
    std::uint64_t b = splitmix64(sm);
    return a ^ rotl(b, 32);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace emst::support
